//! The aggregator side: reaches N workers through a [`Transport`] — spawned
//! child processes on stdin/stdout pipes ([`PipeTransport`], via
//! [`ClusterAggregator::spawn`]) or already-running remote workers on TCP
//! sockets ([`TcpTransport`], via [`ClusterAggregator::connect_workers`]) —
//! streams batches to them over the frame protocol using the *same* routing
//! stage as the in-process engine ([`knw_engine::ShardBatcher`]), and
//! merges their serialized shards into one sketch.
//!
//! ```text
//!        ingest / ingest_batch  (U = u64 or (item, ±delta))
//!                     │
//!          ┌──────────▼──────────┐   optional pre-coalescing
//!          │  ShardBatcher       │   (per-item delta sums, L0 only)
//!          │  RoundRobin/HashAff │
//!          └──────────┬──────────┘
//!     Batch frames    │  (length-prefixed serde codec,
//!                     │   pipes or TCP sockets)
//!      ┌──────────┬───┴──────┬──────────────┐
//! ┌────▼───┐ ┌────▼───┐ ┌────▼───┐    ┌────▼───┐
//! │worker 0│ │worker 1│ │worker 2│  … │worker N│   child processes or
//! │ sketch │ │ sketch │ │ sketch │    │ sketch │   listening hosts,
//! └────┬───┘ └────┬───┘ └────┬───┘    └────┬───┘   one shard each
//!      └──────────┴─────┬────┴──────────────┘
//!       Shard{bytes}    │  (pipes / sockets back)
//!                deserialize + merge_dyn fold
//!                       │
//!                  estimate()
//! ```
//!
//! Because the batcher, policies and batch sizes are shared with
//! [`ShardRouter`](knw_engine::ShardRouter) / `ShardedEngine`, a cluster
//! run's shard contents are identical to an in-process run's — and since
//! every sketch in the workspace merges exactly, the final estimate is
//! bit-identical to a single-process, single-sketch run over the same
//! stream.

use crate::error::ClusterError;
use crate::frame::MAX_FRAME_LEN;
use crate::frame::{
    BatchPayload, Frame, FrameView, HelloConfig, SketchSpec, StreamMode, WireError, WorkerStats,
};
use crate::recovery::{RecoveryPolicy, WorkerRegistry};
use crate::spec::{build_f0, build_l0, f0_shard_from_bytes, l0_shard_from_bytes};
use crate::spec::{WireF0Sketch, WireL0Sketch};
use crate::transport::{
    PipeTransport, PoolTransport, TcpClusterConfig, TcpTransport, Transport, WorkerConnection,
};
use knw_core::{DynMergeableCardinalityEstimator, DynMergeableTurnstileEstimator, SketchError};
use knw_engine::{BatcherMetrics, EngineConfig, Routable, RoutingPolicy, ShardBatcher};
use knw_hash::rng::{epoch_shard_for_key, split_parent};
use knw_metrics::{knw_log, Counter, Histogram};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

/// An update type the cluster can stream: ties the routing-stage contract
/// ([`Routable`]) to the wire format (payload framing, shard construction,
/// deserialization and merging) for its stream model.
///
/// Implemented for `u64` (insert-only F0 workers) and `(u64, i64)`
/// (turnstile L0 workers); never implement it manually.
pub trait ClusterUpdate: Routable {
    /// The erased shard-sketch type of this stream model.
    type Shard: ?Sized;

    /// Encoded size of one update inside a `Batch` frame's array (the
    /// workspace codec is fixed-width: 8 bytes per `u64` item, 16 per
    /// `(u64, i64)` update).  Drives the outgoing frame chunking that keeps
    /// every `Batch` frame below [`MAX_FRAME_LEN`].
    const WIRE_BYTES: usize;

    /// The codec's `BatchPayload` variant tag for this update type (0 for
    /// `Items`, 1 for `Updates`) — what [`encode_batch_frame`] writes where
    /// the derived serializer would write the enum discriminant.
    const WIRE_TAG: u32;

    /// Appends this update's fixed-width wire encoding — exactly
    /// [`WIRE_BYTES`](Self::WIRE_BYTES) little-endian bytes, matching the
    /// derived serializer — to `out`.
    fn write_wire(&self, out: &mut Vec<u8>);

    /// Reads one update back out of its fixed-width wire encoding — the
    /// inverse of [`write_wire`](Self::write_wire), over exactly
    /// [`WIRE_BYTES`](Self::WIRE_BYTES) bytes.  Elastic resharding uses it
    /// to split journaled frames under a new routing table.
    fn read_wire(bytes: &[u8]) -> Self;

    /// The stream model tag sent in the `Hello` frame.
    fn mode() -> StreamMode;

    /// Wraps a routed batch into the wire payload.
    fn payload(batch: Vec<Self>) -> BatchPayload;

    /// Builds a fresh local sketch for `spec` (used to validate the spec
    /// before spawning, and by single-process comparisons).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] for names outside the zoo.
    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError>;

    /// Decodes a worker's shard bytes; the error is the codec's message.
    ///
    /// # Errors
    ///
    /// The codec rejection, as a message the caller attributes to a worker.
    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String>;

    /// Applies buffered (not yet dispatched) updates to a merged snapshot.
    fn apply(shard: &mut Self::Shard, batch: &[Self]);

    /// Merges `other` into `into` (exact for every workspace sketch).
    ///
    /// # Errors
    ///
    /// The sketch-level incompatibility, if the shards disagree on
    /// configuration or seeds.
    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError>;

    /// The shard's current estimate.
    fn estimate(shard: &Self::Shard) -> f64;

    /// Serializes a (merged) shard back to the bytes a `Frame::Shard`
    /// reply carries — the serve loop's answer to session `Snapshot` /
    /// `Finish` requests.
    fn shard_bytes(shard: &Self::Shard) -> Vec<u8>;

    /// Borrows this stream model's updates out of a decoded frame view
    /// (`None` if the view is not a batch of this model) — how the serve
    /// loop feeds session batches into the typed aggregator without
    /// copying.
    fn batch_view<'a>(view: &'a FrameView<'_>) -> Option<&'a [Self]>;
}

impl ClusterUpdate for u64 {
    type Shard = dyn WireF0Sketch;

    const WIRE_BYTES: usize = 8;

    const WIRE_TAG: u32 = 0;

    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_wire(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes[..8].try_into().expect("8-byte item"))
    }

    fn mode() -> StreamMode {
        StreamMode::F0
    }

    fn payload(batch: Vec<u64>) -> BatchPayload {
        BatchPayload::Items(batch)
    }

    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError> {
        build_f0(spec)
    }

    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String> {
        f0_shard_from_bytes(spec, bytes)
    }

    fn apply(shard: &mut Self::Shard, batch: &[u64]) {
        shard.insert_batch(batch);
    }

    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError> {
        into.merge_dyn(other as &dyn DynMergeableCardinalityEstimator)
    }

    fn estimate(shard: &Self::Shard) -> f64 {
        shard.estimate()
    }

    fn shard_bytes(shard: &Self::Shard) -> Vec<u8> {
        shard.wire_bytes()
    }

    fn batch_view<'a>(view: &'a FrameView<'_>) -> Option<&'a [u64]> {
        match view {
            FrameView::Items(items) => Some(items),
            FrameView::Owned(Frame::Batch(BatchPayload::Items(items))) => Some(items),
            _ => None,
        }
    }
}

impl ClusterUpdate for (u64, i64) {
    type Shard = dyn WireL0Sketch;

    const WIRE_BYTES: usize = 16;

    const WIRE_TAG: u32 = 1;

    fn write_wire(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_le_bytes());
        out.extend_from_slice(&self.1.to_le_bytes());
    }

    fn read_wire(bytes: &[u8]) -> Self {
        (
            u64::from_le_bytes(bytes[..8].try_into().expect("8-byte item")),
            i64::from_le_bytes(bytes[8..16].try_into().expect("8-byte delta")),
        )
    }

    fn mode() -> StreamMode {
        StreamMode::L0
    }

    fn payload(batch: Vec<(u64, i64)>) -> BatchPayload {
        BatchPayload::Updates(batch)
    }

    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError> {
        build_l0(spec)
    }

    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String> {
        l0_shard_from_bytes(spec, bytes)
    }

    fn apply(shard: &mut Self::Shard, batch: &[(u64, i64)]) {
        shard.update_batch(batch);
    }

    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError> {
        into.merge_dyn(other as &dyn DynMergeableTurnstileEstimator)
    }

    fn estimate(shard: &Self::Shard) -> f64 {
        shard.estimate()
    }

    fn shard_bytes(shard: &Self::Shard) -> Vec<u8> {
        shard.wire_bytes()
    }

    fn batch_view<'a>(view: &'a FrameView<'_>) -> Option<&'a [(u64, i64)]> {
        match view {
            FrameView::Updates(updates) => Some(updates),
            FrameView::Owned(Frame::Batch(BatchPayload::Updates(updates))) => Some(updates),
            _ => None,
        }
    }
}

/// Cluster sizing: the shared engine knobs (shard count = worker count,
/// batch size, routing policy, pre-coalescing) plus the path of the worker
/// executable to spawn.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Routing knobs, shared verbatim with the in-process engine.
    pub engine: EngineConfig,
    /// Path to the `knw-worker` executable.
    pub worker_exe: PathBuf,
    /// Reconnect-and-replay recovery for faulted workers (`None` — the
    /// default — fails the run on the first worker fault).  On the pipe
    /// transport recovery re-*spawns* a fresh child process and replays
    /// the shard's journal through it.
    pub recovery: Option<RecoveryPolicy>,
}

impl ClusterConfig {
    /// Creates a cluster configuration for `workers` worker processes using
    /// the given worker executable.
    #[must_use]
    pub fn new(workers: usize, worker_exe: impl Into<PathBuf>) -> Self {
        Self {
            engine: EngineConfig::new(workers),
            worker_exe: worker_exe.into(),
            recovery: None,
        }
    }

    /// Replaces the engine knobs (batch size, routing, pre-coalescing),
    /// keeping the worker count consistent with `engine.shards`.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Enables reconnect-and-replay recovery with the given policy.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }
}

/// Locates the sibling `knw-worker` binary next to the current executable
/// (handling cargo's `target/<profile>/deps/` and
/// `target/<profile>/examples/` layouts for tests, benches and examples).
/// Returns `None` when no such file exists — e.g. when only the library
/// was built.
#[must_use]
pub fn sibling_worker_exe() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir
        .file_name()
        .is_some_and(|n| n == "deps" || n == "examples")
    {
        dir.pop();
    }
    let candidate = dir.join("knw-worker");
    candidate.is_file().then_some(candidate)
}

/// How a worker link failed terminally mid-stream (recovery disabled, or
/// already attempted and lost); replayed as the matching typed error at
/// the next report.
#[derive(Debug, Clone)]
enum WorkerFault {
    /// The link broke (dead process, reset connection, EOF).
    Died,
    /// The link timed out (stalled or half-open peer).
    TimedOut,
    /// An exchange failed without killing the link (codec rejection,
    /// protocol violation, merge failure): the conversation state is
    /// unknown — batches may be lost, reply frames may still be queued —
    /// so later reports refuse instead of silently under-merging.
    Desynced,
    /// The link's read timed out mid-frame: the byte stream is
    /// desynchronized but — unlike [`WorkerFault::Desynced`] — the cause
    /// is a link stall, not a deterministic failure, so recovery may
    /// re-dial and replay.
    LinkDesynced,
    /// Reconnect-and-replay recovery ran out of attempts.
    RecoveryExhausted {
        /// Attempts made before giving up.
        attempts: usize,
        /// Rendering of the last attempt's failure.
        last: String,
    },
    /// The replay journal had overflowed its bound before the fault.
    JournalOverflow {
        /// The configured per-shard journal bound.
        cap: usize,
    },
}

impl WorkerFault {
    fn to_error(&self, worker: usize) -> ClusterError {
        match self {
            WorkerFault::Died => ClusterError::WorkerDied { worker },
            WorkerFault::TimedOut => ClusterError::Timeout { worker },
            WorkerFault::Desynced => ClusterError::Protocol {
                worker,
                expected: "Shard",
                got: "a link desynchronized by an earlier failure".to_string(),
            },
            WorkerFault::LinkDesynced => ClusterError::Desynced { worker },
            WorkerFault::RecoveryExhausted { attempts, last } => ClusterError::RecoveryExhausted {
                worker,
                attempts: *attempts,
                last: last.clone(),
            },
            WorkerFault::JournalOverflow { cap } => {
                ClusterError::JournalOverflow { worker, cap: *cap }
            }
        }
    }

    /// The sticky fault a failed exchange (or failed recovery) leaves
    /// behind.
    fn from_error(error: &ClusterError) -> Self {
        match error {
            ClusterError::WorkerDied { .. } => WorkerFault::Died,
            ClusterError::Timeout { .. } => WorkerFault::TimedOut,
            ClusterError::Desynced { .. } => WorkerFault::LinkDesynced,
            ClusterError::RecoveryExhausted { attempts, last, .. } => {
                WorkerFault::RecoveryExhausted {
                    attempts: *attempts,
                    last: last.clone(),
                }
            }
            ClusterError::JournalOverflow { cap, .. } => WorkerFault::JournalOverflow { cap: *cap },
            _ => WorkerFault::Desynced,
        }
    }
}

/// Whether an error is a *link* fault (the worker or its connection is
/// gone, stalled, or desynchronized by a mid-frame stall) — the class
/// reconnect-and-replay can repair.  Protocol violations, codec rejections
/// and merge incompatibilities are deterministic: a fresh worker fed the
/// same journal reproduces them, so recovery refuses to retry those.  A
/// desynced link qualifies because recovery never *resumes* the old
/// connection: it re-dials and replays the journal on a fresh one, which
/// is sound whether or not the old stream position was lost.
fn is_link_fault(error: &ClusterError) -> bool {
    matches!(
        error,
        ClusterError::WorkerDied { .. }
            | ClusterError::Timeout { .. }
            | ClusterError::Desynced { .. }
            | ClusterError::ConnectFailed { .. }
            | ClusterError::Io { .. }
    )
}

/// Encoded overhead of a `Batch` frame around its update array: the
/// `Frame` variant tag (4 bytes), the `BatchPayload` variant tag (4) and
/// the array length (8).
const BATCH_FRAME_OVERHEAD: usize = 16;

/// The most updates one `Batch` frame can carry with its encoded payload
/// still within [`MAX_FRAME_LEN`]; the send boundary chunks larger routed
/// batches so an `Oversized` frame cannot be constructed locally.
fn max_updates_per_frame<U: ClusterUpdate>() -> usize {
    (MAX_FRAME_LEN - BATCH_FRAME_OVERHEAD) / U::WIRE_BYTES
}

/// Encodes one `Batch` frame for `updates` into `buf` (cleared first),
/// length prefix included — byte-identical to
/// `write_frame(buf, &Frame::Batch(U::payload(updates.to_vec())))`, pinned
/// by test.  Writing the fixed-width layout directly means the hot dispatch
/// path never materializes an owning `Frame` or a payload `Vec`: one reused
/// buffer carries every outgoing batch.
fn encode_batch_frame<U: ClusterUpdate>(buf: &mut Vec<u8>, updates: &[U]) {
    buf.clear();
    let payload_len = BATCH_FRAME_OVERHEAD + updates.len() * U::WIRE_BYTES;
    buf.reserve(4 + payload_len);
    buf.extend_from_slice(
        &u32::try_from(payload_len)
            .expect("chunked below MAX_FRAME_LEN")
            .to_le_bytes(),
    );
    buf.extend_from_slice(&1u32.to_le_bytes()); // Frame::Batch
    buf.extend_from_slice(&U::WIRE_TAG.to_le_bytes());
    buf.extend_from_slice(&(updates.len() as u64).to_le_bytes());
    for update in updates {
        update.write_wire(buf);
    }
}

/// Decodes the updates back out of one journaled `Batch` frame — the
/// inverse of [`encode_batch_frame`], over the fixed-width layout that
/// function pins (length prefix, `Frame`/payload tags, update count, then
/// `WIRE_BYTES` per update).  Only ever applied to frames the journal
/// itself encoded, so the layout is trusted; elastic resharding uses it to
/// re-route a split shard's journal under a new epoch table.
fn decode_journal_frame<U: ClusterUpdate>(frame: &[u8]) -> Vec<U> {
    let body = &frame[4 + BATCH_FRAME_OVERHEAD..];
    debug_assert_eq!(body.len() % U::WIRE_BYTES, 0, "journal frame layout");
    body.chunks_exact(U::WIRE_BYTES).map(U::read_wire).collect()
}

/// Ships one routed batch as one or more encoded `Batch` frames, each
/// holding at most `cap` updates (callers pass [`max_updates_per_frame`];
/// tests pass small caps to exercise the splitting).  Each chunk is encoded
/// once into the reused `buf` and sent raw; with a journal attached, the
/// encoded bytes are journaled (as shared `Arc<[u8]>` frames) *before* the
/// send, and every chunk of the batch is journaled even after a failed send
/// — a successful recovery's replay delivers the whole batch, so nothing
/// here needs re-sending.
fn send_encoded_batch_capped<U: ClusterUpdate>(
    conn: &mut dyn WorkerConnection,
    worker: usize,
    batch: &[U],
    cap: usize,
    buf: &mut Vec<u8>,
    journal: Option<(&mut ShardJournal, usize)>,
) -> Result<(), ClusterError> {
    let cap = cap.max(1);
    let Some((journal, journal_cap)) = journal else {
        for chunk in batch.chunks(cap) {
            encode_batch_frame(buf, chunk);
            conn.send_raw(buf).map_err(|e| wire_fault(worker, e))?;
        }
        return Ok(());
    };
    let mut result = Ok(());
    for chunk in batch.chunks(cap) {
        encode_batch_frame(buf, chunk);
        journal.record(Arc::from(buf.as_slice()), chunk.len(), journal_cap);
        if result.is_ok() {
            result = conn.send_raw(buf).map_err(|e| wire_fault(worker, e));
        }
    }
    result
}

/// One shard's replay journal: everything needed to rebuild the shard's
/// state on a fresh worker — the serialized checkpoint of the last
/// acknowledged snapshot (if any) plus every batch routed to the shard
/// since.  Sound because shard state is a pure fold of its batch stream:
/// `checkpoint ⊕ fold(batches)` *is* the state, byte for byte.
///
/// The journal stores *encoded* `Batch` frames (prefix included, shared
/// with the send path via `Arc`), not update values: replay is a straight
/// `send_raw` of bytes already proven well-formed, with no re-encoding —
/// and one journal type serves both stream models.
struct ShardJournal {
    /// Serialized shard bytes of the last acknowledged snapshot.
    checkpoint: Option<Vec<u8>>,
    /// Encoded frames dispatched since the checkpoint, in dispatch order,
    /// each with the number of updates it carries (the cap accounting).
    frames: Vec<(Arc<[u8]>, usize)>,
    /// Total updates across `frames`.
    journaled: usize,
    /// The journal exceeded its bound and was discarded; the shard can no
    /// longer be replayed (until the next acknowledged snapshot re-anchors
    /// it).
    overflowed: bool,
}

impl ShardJournal {
    fn new() -> Self {
        Self {
            checkpoint: None,
            frames: Vec::new(),
            journaled: 0,
            overflowed: false,
        }
    }

    /// Records one dispatched frame of `updates` updates, honouring the
    /// journal bound: a frame that would push the journal past `cap`
    /// discards the journal instead (memory stays bounded; a later fault is
    /// a typed [`ClusterError::JournalOverflow`]).
    fn record(&mut self, frame: Arc<[u8]>, updates: usize, cap: usize) {
        if self.overflowed {
            return;
        }
        if self.journaled + updates > cap {
            self.overflowed = true;
            self.frames = Vec::new();
            self.journaled = 0;
        } else {
            self.journaled += updates;
            self.frames.push((frame, updates));
        }
    }

    /// Re-anchors the journal on an acknowledged snapshot: the serialized
    /// shard bytes become the checkpoint, the batch list (and any overflow
    /// mark) is cleared.
    fn truncate_to_checkpoint(&mut self, bytes: Vec<u8>) {
        self.checkpoint = Some(bytes);
        self.frames.clear();
        self.journaled = 0;
        self.overflowed = false;
    }

    /// Builds a shard's post-reshard journal: the given checkpoint plus
    /// `updates` re-encoded as capped `Batch` frames (the same chunking the
    /// send path applies, so replaying the journal is indistinguishable
    /// from having dispatched the updates directly).
    fn from_split<U: ClusterUpdate>(checkpoint: Option<Vec<u8>>, updates: &[U]) -> Self {
        let mut journal = Self::new();
        journal.checkpoint = checkpoint;
        let cap = max_updates_per_frame::<U>().max(1);
        for chunk in updates.chunks(cap) {
            let mut buf = Vec::new();
            encode_batch_frame(&mut buf, chunk);
            journal.frames.push((buf.into(), chunk.len()));
            journal.journaled += chunk.len();
        }
        journal
    }
}

/// The aggregator's link instrumentation: per-worker send / fault /
/// recovery counters, the snapshot-latency histogram, and the fold of
/// worker-reported [`WorkerStats`] into the fleet-wide `knw_fleet_*`
/// families.  All handles are resolved against the process-wide registry
/// at construction, so the dispatch hot path touches nothing but
/// pre-registered atomics.
struct AggregatorMetrics {
    /// `Batch` frames shipped per worker (after chunking).
    sends: Vec<Arc<Counter>>,
    /// Encoded bytes shipped per worker, length prefixes included.
    send_bytes: Vec<Arc<Counter>>,
    /// Link faults observed per worker (before any recovery attempt).
    faults: Vec<Arc<Counter>>,
    /// Successful reconnect-and-replay recoveries per worker.
    recoveries: Vec<Arc<Counter>>,
    /// Journal frames replayed onto fresh links per worker.
    replayed_frames: Vec<Arc<Counter>>,
    /// Updates removed by pre-coalescing before routing.
    coalesced: Arc<Counter>,
    /// End-to-end latency of the snapshot exchange, in nanoseconds.
    snapshot_latency: Arc<Histogram>,
    /// Completed `scale_to` grows.
    reshard_scale_ups: Arc<Counter>,
    /// Completed `scale_to` shrinks.
    reshard_scale_downs: Arc<Counter>,
    /// Journal frames replayed onto fresh sessions by resharding (split
    /// replays on grow; recovery replays are counted separately under
    /// `knw_cluster_worker_replayed_frames_total`).
    reshard_replayed_frames: Arc<Counter>,
    /// Distinct routing keys moved to a different shard by resharding.
    reshard_moved_keys: Arc<Counter>,
    /// End-to-end latency of one `scale_to` call, in nanoseconds.
    reshard_latency: Arc<Histogram>,
}

impl AggregatorMetrics {
    /// Resolves the per-worker counter family `name` for worker indices
    /// `from..to` against the process-wide registry.
    fn per_worker_range(name: &str, from: usize, to: usize) -> Vec<Arc<Counter>> {
        let registry = knw_metrics::global();
        (from..to)
            .map(|worker| {
                let label = worker.to_string();
                registry.counter(name, &[("worker", &label)])
            })
            .collect()
    }

    fn register(workers: usize) -> Self {
        let registry = knw_metrics::global();
        let per_worker = |name: &str| Self::per_worker_range(name, 0, workers);
        Self {
            sends: per_worker("knw_cluster_worker_sends_total"),
            send_bytes: per_worker("knw_cluster_worker_send_bytes_total"),
            faults: per_worker("knw_cluster_worker_faults_total"),
            recoveries: per_worker("knw_cluster_worker_recoveries_total"),
            replayed_frames: per_worker("knw_cluster_worker_replayed_frames_total"),
            coalesced: registry.counter("knw_cluster_coalesced_updates_total", &[]),
            snapshot_latency: registry.histogram("knw_cluster_snapshot_latency_ns", &[]),
            reshard_scale_ups: registry.counter("knw_cluster_reshard_scale_ups_total", &[]),
            reshard_scale_downs: registry.counter("knw_cluster_reshard_scale_downs_total", &[]),
            reshard_replayed_frames: registry
                .counter("knw_cluster_reshard_replayed_frames_total", &[]),
            reshard_moved_keys: registry.counter("knw_cluster_reshard_moved_keys_total", &[]),
            reshard_latency: registry.histogram("knw_cluster_reshard_latency_ns", &[]),
        }
    }

    /// Grows every per-worker counter family to cover `workers` indices —
    /// called by `scale_to` so a grown fleet's new shards are counted from
    /// their first dispatched batch.  (Families never shrink: a retired
    /// index's counters keep their totals, matching the registry's
    /// monotonic contract.)
    fn ensure_workers(&mut self, workers: usize) {
        let families: [(&str, &mut Vec<Arc<Counter>>); 5] = [
            ("knw_cluster_worker_sends_total", &mut self.sends),
            ("knw_cluster_worker_send_bytes_total", &mut self.send_bytes),
            ("knw_cluster_worker_faults_total", &mut self.faults),
            ("knw_cluster_worker_recoveries_total", &mut self.recoveries),
            (
                "knw_cluster_worker_replayed_frames_total",
                &mut self.replayed_frames,
            ),
        ];
        for (name, counters) in families {
            if counters.len() < workers {
                let grown = Self::per_worker_range(name, counters.len(), workers);
                counters.extend(grown);
            }
        }
    }

    /// Records one dispatched batch: `frames` encoded `Batch` frames
    /// totalling `bytes` on the wire.  Arithmetic, not measurement — the
    /// encoding law is fixed-width (pinned by test), so the counts are
    /// computed from the batch length without touching the send buffer.
    fn on_send(&self, worker: usize, frames: u64, bytes: u64) {
        if let Some(counter) = self.sends.get(worker) {
            counter.add(frames);
        }
        if let Some(counter) = self.send_bytes.get(worker) {
            counter.add(bytes);
        }
    }

    fn on_fault(&self, worker: usize) {
        if let Some(counter) = self.faults.get(worker) {
            counter.inc();
        }
    }

    fn on_recovery(&self, worker: usize, replayed: u64) {
        if let Some(counter) = self.recoveries.get(worker) {
            counter.inc();
        }
        if let Some(counter) = self.replayed_frames.get(worker) {
            counter.add(replayed);
        }
    }

    /// Folds one worker's session counters (shipped back as
    /// [`Frame::Stats`] ahead of its final shard) into the fleet-wide
    /// `knw_fleet_*` families, labelled by worker index.
    fn record_worker_stats(&self, worker: usize, stats: WorkerStats) {
        let registry = knw_metrics::global();
        let label = worker.to_string();
        let pairs = [
            ("knw_fleet_frames_received_total", stats.frames_received),
            ("knw_fleet_batches_ingested_total", stats.batches_ingested),
            ("knw_fleet_updates_ingested_total", stats.updates_ingested),
            ("knw_fleet_snapshots_served_total", stats.snapshots_served),
        ];
        for (name, value) in pairs {
            registry.counter(name, &[("worker", &label)]).add(value);
        }
    }
}

/// The aggregator's mutable link state, split off from the batcher so the
/// routing callbacks can dispatch, journal and recover while the batcher
/// is borrowed: connections, sticky-fault bookkeeping, journals, and the
/// transport + policy that reconnect-and-replay runs through.
struct LinkSet<'a, U: ClusterUpdate> {
    workers: &'a mut Vec<Box<dyn WorkerConnection>>,
    fault: &'a mut Option<(usize, WorkerFault)>,
    journals: &'a mut Vec<ShardJournal>,
    transport: &'a dyn Transport,
    recovery: Option<RecoveryPolicy>,
    spec: &'a SketchSpec,
    /// The aggregator's reused frame-encoding buffer (see
    /// [`encode_batch_frame`]); one allocation amortized over every
    /// dispatched batch.
    send_buf: &'a mut Vec<u8>,
    metrics: &'a AggregatorMetrics,
    _update: std::marker::PhantomData<U>,
}

impl<U: ClusterUpdate> LinkSet<'_, U> {
    /// Best-effort batch hand-off: the batch is journaled (when recovery is
    /// on) before the send, so a failed link can be reconnected and
    /// replayed in place; with recovery off — or lost — the worker is
    /// marked faulted for the next report, mirroring the in-process
    /// engine's `poisoned` bookkeeping.
    fn dispatch(&mut self, worker: usize, batch: Vec<U>) {
        // Once any link has faulted terminally the run can only end in
        // that error, so stop shipping batches: on TCP each further flush
        // to a stalled peer would cost a full io_timeout.
        if self.fault.is_some() {
            return;
        }
        // An empty batch carries no updates: spend neither a frame nor
        // journal space on it.
        if batch.is_empty() {
            return;
        }
        let journal = match self.recovery {
            Some(policy) => Some((&mut self.journals[worker], policy.journal_cap)),
            None => None,
        };
        let cap = max_updates_per_frame::<U>();
        let result = send_encoded_batch_capped(
            self.workers[worker].as_mut(),
            worker,
            &batch,
            cap,
            self.send_buf,
            journal,
        );
        // Frame and byte counts follow from the fixed-width encoding law:
        // `chunks` frames, each 4 prefix + `BATCH_FRAME_OVERHEAD` framing
        // bytes, plus `WIRE_BYTES` per update.
        let chunks = batch.len().div_ceil(cap) as u64;
        self.metrics.on_send(
            worker,
            chunks,
            chunks * (4 + BATCH_FRAME_OVERHEAD) as u64 + (batch.len() * U::WIRE_BYTES) as u64,
        );
        if let Err(error) = result {
            // The failed batch is already in the journal, so a successful
            // recovery's replay delivers it — nothing to re-send here.
            if let Err(error) = self.try_recover(worker, error) {
                self.fault
                    .get_or_insert((worker, WorkerFault::from_error(&error)));
            }
        }
    }

    /// Attempts reconnect-and-replay for `worker` after `error`.  Returns
    /// `Ok(())` with a fresh, caught-up link in place, or the terminal
    /// error (the original one when recovery is off or the fault is not a
    /// link fault; [`ClusterError::JournalOverflow`] /
    /// [`ClusterError::RecoveryExhausted`] otherwise).
    fn try_recover(&mut self, worker: usize, error: ClusterError) -> Result<(), ClusterError> {
        self.metrics.on_fault(worker);
        let Some(policy) = self.recovery else {
            return Err(error);
        };
        if !is_link_fault(&error) {
            return Err(error);
        }
        if self.journals[worker].overflowed {
            return Err(ClusterError::JournalOverflow {
                worker,
                cap: policy.journal_cap,
            });
        }
        knw_log!(
            WARN,
            "knw-aggregate",
            "worker link faulted; attempting recovery",
            worker = worker,
            error = error,
            max_retries = policy.max_retries,
        );
        let mut last = error;
        for attempt in 1..=policy.max_retries {
            if attempt > 1 {
                // Linear backoff: probe a flapping worker quickly at
                // first, ever more patiently after.
                std::thread::sleep(policy.backoff * (attempt as u32 - 1));
            }
            match self.reconnect_and_replay(worker) {
                Ok(conn) => {
                    self.workers[worker] = conn;
                    let replayed = self.journals[worker].frames.len() as u64;
                    self.metrics.on_recovery(worker, replayed);
                    knw_log!(
                        INFO,
                        "knw-aggregate",
                        "worker link recovered",
                        worker = worker,
                        attempt = attempt,
                        replayed_frames = replayed,
                    );
                    return Ok(());
                }
                Err(e) => last = e,
            }
        }
        Err(ClusterError::RecoveryExhausted {
            worker,
            attempts: policy.max_retries,
            last: last.to_string(),
        })
    }

    /// One recovery attempt: re-open the link (same address, respawned
    /// child, or a registered replacement), greet the fresh worker, restore
    /// the checkpoint, and replay every journaled batch.  The fresh session
    /// starts from empty state, so the replayed fold reproduces the lost
    /// shard exactly.
    fn reconnect_and_replay(
        &mut self,
        worker: usize,
    ) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        let mut conn = self.transport.reopen(worker)?;
        conn.send(&Frame::Hello(HelloConfig {
            worker_index: worker as u64,
            spec: self.spec.clone(),
        }))
        .map_err(|e| wire_fault(worker, e))?;
        let journal = &self.journals[worker];
        if let Some(bytes) = &journal.checkpoint {
            conn.send(&Frame::Restore(bytes.clone()))
                .map_err(|e| wire_fault(worker, e))?;
        }
        for (frame, _) in &journal.frames {
            // The journal holds ready-to-send encoded frames; replay is a
            // straight byte copy onto the fresh link, no re-encoding.
            conn.send_raw(frame).map_err(|e| wire_fault(worker, e))?;
        }
        Ok(conn)
    }

    /// The snapshot request/reply round with per-worker recovery: requests
    /// are fanned out before any reply is collected (workers serialize
    /// concurrently), and a link fault at either step triggers one
    /// reconnect-and-replay plus a re-request on the fresh link.  Failures
    /// are attributed to the worker index they happened on.
    fn snapshot_shards(&mut self) -> Result<Vec<Vec<u8>>, (usize, ClusterError)> {
        for index in 0..self.workers.len() {
            if let Err(e) = self.workers[index].send(&Frame::Snapshot) {
                let error = wire_fault(index, e);
                self.try_recover(index, error).map_err(|e| (index, e))?;
                self.workers[index]
                    .send(&Frame::Snapshot)
                    .map_err(|e| (index, wire_fault(index, e)))?;
            }
        }
        let mut shards = Vec::with_capacity(self.workers.len());
        for index in 0..self.workers.len() {
            let bytes = match read_shard(self.workers[index].as_mut(), index) {
                Ok(bytes) => bytes,
                Err(error) => {
                    // The fresh link replayed the journal; ask it again.
                    self.try_recover(index, error).map_err(|e| (index, e))?;
                    self.workers[index]
                        .send(&Frame::Snapshot)
                        .map_err(|e| (index, wire_fault(index, e)))?;
                    read_shard(self.workers[index].as_mut(), index).map_err(|e| (index, e))?
                }
            };
            shards.push(bytes);
        }
        Ok(shards)
    }

    /// The snapshot request/reply round for one worker (the resharding
    /// flows need a single survivor's live shard, not the whole fleet's),
    /// with the same recover-and-re-request handling as
    /// [`snapshot_shards`](Self::snapshot_shards).
    fn snapshot_one(&mut self, worker: usize) -> Result<Vec<u8>, ClusterError> {
        if let Err(e) = self.workers[worker].send(&Frame::Snapshot) {
            let error = wire_fault(worker, e);
            self.try_recover(worker, error)?;
            self.workers[worker]
                .send(&Frame::Snapshot)
                .map_err(|e| wire_fault(worker, e))?;
        }
        match read_shard(self.workers[worker].as_mut(), worker) {
            Ok(bytes) => Ok(bytes),
            Err(error) => {
                self.try_recover(worker, error)?;
                self.workers[worker]
                    .send(&Frame::Snapshot)
                    .map_err(|e| wire_fault(worker, e))?;
                read_shard(self.workers[worker].as_mut(), worker)
            }
        }
    }

    /// Sends `Finish` and half-closes worker `index`'s link, with one
    /// recovery retry on a link fault.
    fn send_finish(&mut self, worker: usize) -> Result<(), ClusterError> {
        if let Err(e) = self.workers[worker].send(&Frame::Finish) {
            let error = wire_fault(worker, e);
            self.try_recover(worker, error)?;
            self.workers[worker]
                .send(&Frame::Finish)
                .map_err(|e| wire_fault(worker, e))?;
        }
        self.workers[worker].close_send();
        Ok(())
    }

    /// Collects worker `index`'s final shard and confirms the clean
    /// shutdown, recovering (replay + re-`Finish`) once on a link fault.
    fn collect_final_shard(&mut self, worker: usize) -> Result<Vec<u8>, ClusterError> {
        match self.final_shard_once(worker) {
            Ok(bytes) => Ok(bytes),
            Err(error) => {
                self.try_recover(worker, error)?;
                self.workers[worker]
                    .send(&Frame::Finish)
                    .map_err(|e| wire_fault(worker, e))?;
                self.workers[worker].close_send();
                self.final_shard_once(worker)
            }
        }
    }

    fn final_shard_once(&mut self, worker: usize) -> Result<Vec<u8>, ClusterError> {
        let (stats, bytes) = read_final_shard(self.workers[worker].as_mut(), worker)?;
        if let Some(stats) = stats {
            self.metrics.record_worker_stats(worker, stats);
        }
        match self.workers[worker].confirm_finished() {
            Ok(true) => Ok(bytes),
            Ok(false) => Err(ClusterError::WorkerDied { worker }),
            Err(e) => Err(wire_fault(worker, WireError::Io(e))),
        }
    }
}

/// Maps a wire-level failure on worker `index`'s link to the aggregation
/// error it means: broken links are dead workers, expired deadlines are
/// stalled workers — but a deadline that expired *mid-frame* is a
/// desynchronized link ([`ClusterError::Desynced`]), never a plain
/// [`ClusterError::Timeout`]: part of a frame was already consumed, so
/// resuming reads in place would misparse leftover bytes as a fresh length
/// prefix.  Everything else keeps its I/O or codec identity.
fn wire_fault(index: usize, error: WireError) -> ClusterError {
    use std::io::ErrorKind;
    match error {
        WireError::Io(e) => match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
                ClusterError::WorkerDied { worker: index }
            }
            ErrorKind::TimedOut | ErrorKind::WouldBlock => ClusterError::Timeout { worker: index },
            _ => ClusterError::io(index, e),
        },
        WireError::TimedOutMidFrame => ClusterError::Desynced { worker: index },
        e => ClusterError::Frame {
            worker: index,
            message: e.to_string(),
        },
    }
}

/// The multi-process aggregation engine: the cross-process sibling of
/// [`ShardedEngine`](knw_engine::ShardedEngine), with worker *processes*
/// instead of worker threads and serialized shards instead of cloned ones.
///
/// A worker crash mirrors the in-process
/// [`SketchError::ShardPanicked`](knw_core::SketchError::ShardPanicked)
/// philosophy: the lost shard's updates cannot be recovered, so reporting
/// refuses with [`ClusterError::WorkerDied`] instead of silently
/// undercounting.
pub struct ClusterAggregator<U: ClusterUpdate> {
    spec: SketchSpec,
    transport: Box<dyn Transport>,
    workers: Vec<Box<dyn WorkerConnection>>,
    batcher: ShardBatcher<U>,
    /// The routing discipline the batcher was built with — kept so
    /// `scale_to` can re-route journaled updates under a new epoch table.
    routing: RoutingPolicy,
    precoalesce: bool,
    updates: u64,
    /// Reconnect-and-replay policy; `None` fails the run on the first
    /// worker fault (the pre-recovery contract).
    recovery: Option<RecoveryPolicy>,
    /// One replay journal per shard (empty when recovery is off).
    journals: Vec<ShardJournal>,
    /// First worker whose link failed terminally mid-stream, and how.
    fault: Option<(usize, WorkerFault)>,
    /// Reused frame-encoding buffer for the dispatch path (see
    /// [`encode_batch_frame`]).
    send_buf: Vec<u8>,
    /// Pre-registered handles into the process-wide metrics registry.
    metrics: AggregatorMetrics,
}

/// The insert-only (F0) front of [`ClusterAggregator`].
pub type F0ClusterAggregator = ClusterAggregator<u64>;

/// The turnstile (L0) front of [`ClusterAggregator`].
pub type L0ClusterAggregator = ClusterAggregator<(u64, i64)>;

impl<U: ClusterUpdate> ClusterAggregator<U> {
    /// Spawns `config.engine.shards` worker processes on stdin/stdout pipes
    /// ([`PipeTransport`]) and performs the `Hello` handshake.  The spec's
    /// stream model is forced to `U`'s.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] if the spec names a sketch
    /// outside the zoo (validated *before* spawning anything), or an
    /// [`ClusterError::Io`] if a worker cannot be spawned or greeted.
    pub fn spawn(config: &ClusterConfig, spec: &SketchSpec) -> Result<Self, ClusterError> {
        let transport = PipeTransport::new(&config.worker_exe);
        Self::start(Box::new(transport), config.engine, spec, config.recovery)
    }

    /// Connects to already-running workers (`knw-worker --listen <addr>`)
    /// over TCP ([`TcpTransport`]) and performs the `Hello` handshake — the
    /// multi-host topology.  One shard per address, in order; routing knobs
    /// and timeouts come from `config`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] for specs outside the zoo
    /// (validated *before* connecting anything), or
    /// [`ClusterError::ConnectFailed`] naming the first worker address
    /// that could not be reached.
    pub fn connect(config: &TcpClusterConfig, spec: &SketchSpec) -> Result<Self, ClusterError> {
        if config.addrs.is_empty() {
            // `with_shards` clamps 0 to 1, so an empty address list would
            // otherwise reach `open(0)` and panic; refuse it typed instead.
            return Err(ClusterError::Io {
                worker: None,
                source: std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "a TCP cluster needs at least one worker address",
                ),
            });
        }
        let transport = TcpTransport::new(config);
        let engine = config.engine.with_shards(config.addrs.len());
        Self::start(Box::new(transport), engine, spec, config.recovery)
    }

    /// Connects to already-running TCP workers with default routing knobs
    /// and timeouts — the `&[addr]` front of [`connect`](Self::connect).
    ///
    /// # Errors
    ///
    /// Same as [`connect`](Self::connect).
    pub fn connect_workers<A: AsRef<str>>(
        addrs: &[A],
        spec: &SketchSpec,
    ) -> Result<Self, ClusterError> {
        Self::connect(
            &TcpClusterConfig::new(addrs.iter().map(AsRef::as_ref)),
            spec,
        )
    }

    /// Starts an aggregation over `workers` workers drawn from a
    /// [`WorkerRegistry`]'s pool — placement without a static address list:
    /// every shard's address comes from the registry's registered (and
    /// health-probed) spares, and shards retired by a later
    /// [`scale_to`](Self::scale_to) return their workers to the pool.
    /// Default engine knobs and no recovery; see
    /// [`from_pool_with`](Self::from_pool_with) for the full set.
    ///
    /// # Errors
    ///
    /// [`ClusterError::PoolExhausted`] when the pool cannot cover `workers`
    /// live workers — the fleet is never silently smaller than asked for —
    /// plus the connect/handshake failures of
    /// [`connect`](Self::connect).
    pub fn from_pool(
        registry: &Arc<WorkerRegistry>,
        workers: usize,
        spec: &SketchSpec,
    ) -> Result<Self, ClusterError> {
        Self::from_pool_with(registry, EngineConfig::new(workers), None, spec)
    }

    /// [`from_pool`](Self::from_pool) with explicit engine knobs (batch
    /// size, routing policy, pre-coalescing — `engine.shards` is the fleet
    /// size) and an optional recovery policy.  Elastic resharding
    /// ([`scale_to`](Self::scale_to)) requires the recovery policy: its
    /// journals are what a grown shard replays.
    ///
    /// # Errors
    ///
    /// Same as [`from_pool`](Self::from_pool).
    pub fn from_pool_with(
        registry: &Arc<WorkerRegistry>,
        engine: EngineConfig,
        recovery: Option<RecoveryPolicy>,
        spec: &SketchSpec,
    ) -> Result<Self, ClusterError> {
        let needed = engine.shards.max(1);
        let live = registry.live_available();
        if live < needed {
            return Err(ClusterError::PoolExhausted { needed, live });
        }
        let transport = PoolTransport::new(Arc::clone(registry));
        Self::start(Box::new(transport), engine, spec, recovery).map_err(|e| match e {
            // A draw that lost the race against other consumers (or a probe
            // that failed between the pre-check and the dial) reports the
            // fleet-level shortfall, not the single failed draw.
            ClusterError::PoolExhausted { .. } => ClusterError::PoolExhausted {
                needed,
                live: registry.live_available(),
            },
            other => other,
        })
    }

    /// The transport-agnostic constructor: opens one link per shard through
    /// `transport` and greets each worker.  With recovery enabled, a link
    /// that cannot be opened is retried under the policy (including
    /// registry re-resolution) before the constructor gives up — the
    /// aggregation still never starts on a partial cluster.
    fn start(
        transport: Box<dyn Transport>,
        engine: EngineConfig,
        spec: &SketchSpec,
        recovery: Option<RecoveryPolicy>,
    ) -> Result<Self, ClusterError> {
        let mut spec = spec.clone();
        spec.mode = U::mode();
        // Fail fast on bad specs, before any process or connection exists.
        let _ = U::build(&spec)?;

        let engine = engine.normalized();
        let mut workers: Vec<Box<dyn WorkerConnection>> = Vec::with_capacity(engine.shards);
        for index in 0..engine.shards {
            workers.push(open_link(transport.as_ref(), index, &spec, recovery)?);
        }
        let journals = if recovery.is_some() {
            (0..engine.shards).map(|_| ShardJournal::new()).collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            spec,
            transport,
            workers,
            batcher: ShardBatcher::new(engine.routing, engine.shards, engine.batch_size)
                .with_metrics(BatcherMetrics::register(
                    knw_metrics::global(),
                    "knw_cluster",
                    engine.shards,
                )),
            routing: engine.routing,
            precoalesce: engine.precoalesce && U::coalescible(),
            updates: 0,
            recovery,
            journals,
            fault: None,
            send_buf: Vec::new(),
            metrics: AggregatorMetrics::register(engine.shards),
        })
    }

    /// Splits the batcher apart from the link state, so the routing
    /// callbacks can dispatch, journal and recover (through the
    /// [`LinkSet`]) while the batcher itself is mutably borrowed.
    fn batcher_and_links(&mut self) -> (&mut ShardBatcher<U>, LinkSet<'_, U>) {
        (
            &mut self.batcher,
            LinkSet {
                workers: &mut self.workers,
                fault: &mut self.fault,
                journals: &mut self.journals,
                transport: self.transport.as_ref(),
                recovery: self.recovery,
                spec: &self.spec,
                send_buf: &mut self.send_buf,
                metrics: &self.metrics,
                _update: std::marker::PhantomData,
            },
        )
    }

    /// The link-state view alone (see [`LinkSet`]), for the exchange
    /// rounds that do not touch the batcher.
    fn links(&mut self) -> LinkSet<'_, U> {
        self.batcher_and_links().1
    }

    /// The spec every worker was configured with.
    #[must_use]
    pub fn spec(&self) -> &SketchSpec {
        &self.spec
    }

    /// Number of worker processes.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total updates routed so far (raw, before any pre-coalescing).
    #[must_use]
    pub fn items_ingested(&self) -> u64 {
        self.updates
    }

    /// Routes one update (buffered; shipped once a batch fills up).
    pub fn ingest(&mut self, update: U) {
        self.updates += 1;
        let (batcher, mut links) = self.batcher_and_links();
        batcher.push(update, &mut |worker, batch| links.dispatch(worker, batch));
    }

    /// Routes a slice of updates.  With pre-coalescing enabled, turnstile
    /// batches are first collapsed to per-item delta sums so workers
    /// receive fewer, pre-summed updates — less wire traffic, same final
    /// state for every linear sketch.
    pub fn ingest_batch(&mut self, updates: &[U]) {
        self.updates += updates.len() as u64;
        if self.precoalesce {
            let coalesced = U::coalesce_batch(updates);
            self.metrics
                .coalesced
                .add((updates.len() - coalesced.len()) as u64);
            let (batcher, mut links) = self.batcher_and_links();
            batcher.extend_from_slice(&coalesced, &mut |worker, batch| {
                links.dispatch(worker, batch);
            });
        } else {
            let (batcher, mut links) = self.batcher_and_links();
            batcher.extend_from_slice(updates, &mut |worker, batch| {
                links.dispatch(worker, batch);
            });
        }
    }

    /// Ships every (possibly partial) pending batch to its worker.
    pub fn flush(&mut self) {
        let (batcher, mut links) = self.batcher_and_links();
        batcher.flush(&mut |worker, batch| links.dispatch(worker, batch));
    }

    /// Severs one worker's link — a fault-injection / operations hook
    /// (e.g. evicting a wedged worker).  Kills the child process on the
    /// pipe transport, shuts the socket down on TCP.  Without recovery the
    /// next report surfaces [`ClusterError::WorkerDied`] for it; with a
    /// [`RecoveryPolicy`] configured, the next exchange touching the
    /// worker reconnects and replays its journal instead.
    ///
    /// # Errors
    ///
    /// The underlying `kill(2)` / `shutdown(2)` failure, if any.
    pub fn kill_worker(&mut self, worker: usize) -> std::io::Result<()> {
        self.workers[worker].kill()
    }

    /// Elastically reshards the live aggregation to `workers` shards
    /// (clamped to at least 1), **exactly**: the estimate after any
    /// sequence of rescales is bit-identical to a single-process run over
    /// the same stream.
    ///
    /// Routing follows a linear-hashing epoch table
    /// ([`knw_hash::rng::epoch_shard_for_key`]): growing `n → n+1` moves
    /// keys from exactly one *split parent* shard to the new shard, and
    /// shrinking folds the retired shard's keys back into that parent.
    /// Each step swaps the batcher's routing epoch
    /// ([`ShardBatcher::install_epoch`]) after the shard states have been
    /// made consistent with the new table:
    ///
    /// - **Grow** (hash-affine): the split parent's replay journal is
    ///   decoded and re-routed under the new table; the new shard starts
    ///   from the parent's checkpoint plus the moved updates, and the
    ///   parent restarts on a fresh session replaying only the kept ones.
    ///   `kept ⊕ (checkpoint ⊕ moved) = checkpoint ⊕ all`, so the fleet
    ///   total is unchanged for idempotent (F0) and linear (L0) sketches
    ///   alike.  Round-robin shards are an arbitrary partition, so a new
    ///   shard simply starts empty and joins the rotation.
    /// - **Shrink**: the highest shard is `Finish`ed, its final shard is
    ///   merged (exactly, via `merge_dyn`) into the split parent's live
    ///   snapshot, and the parent restarts from the merged bytes as its
    ///   new checkpoint.  Survivor indices never shift.
    ///
    /// Retired workers return their addresses to the transport's pool
    /// ([`Transport::retire`]); grown shards draw fresh ones (spawned
    /// children on pipes, registry spares on pooled TCP).
    ///
    /// # Errors
    ///
    /// [`ClusterError::RescaleUnsupported`] when no
    /// [`RecoveryPolicy`] is configured (the journals are what a split
    /// shard replays) or a prior fault has poisoned the run;
    /// [`ClusterError::JournalOverflow`] when the split parent's journal
    /// overflowed (snapshot more often, or raise the cap);
    /// [`ClusterError::PoolExhausted`] when a grow cannot draw a live
    /// worker — the old fleet keeps running in that case; transport /
    /// codec / merge failures otherwise (which poison the run, since a
    /// partially resharded fleet cannot be trusted).
    pub fn scale_to(&mut self, workers: usize) -> Result<(), ClusterError> {
        let target = workers.max(1);
        if self.recovery.is_none() {
            return Err(ClusterError::RescaleUnsupported {
                reason: "journaling is off — configure a RecoveryPolicy so shard \
                         streams can be split and replayed",
            });
        }
        if let Some((worker, fault)) = &self.fault {
            // A prior fault poisoned the run; surface it, not a rescale.
            return Err(fault.to_error(*worker));
        }
        let from = self.workers.len();
        if target == from {
            return Ok(());
        }
        let started = std::time::Instant::now();
        // Ship every pending batch under the OLD table first: updates
        // buffered under one routing epoch must never be dispatched under
        // another.
        self.flush();
        if let Some((worker, fault)) = &self.fault {
            return Err(fault.to_error(*worker));
        }
        let result = loop {
            let len = self.workers.len();
            if len == target {
                break Ok(());
            }
            let step = if len < target {
                self.grow_one()
            } else {
                self.shrink_one()
            };
            if let Err(error) = step {
                break Err(error);
            }
        };
        self.metrics
            .reshard_latency
            .record_duration(started.elapsed());
        match &result {
            Ok(()) => {
                if target > from {
                    self.metrics.reshard_scale_ups.inc();
                } else {
                    self.metrics.reshard_scale_downs.inc();
                }
                knw_log!(
                    INFO,
                    "knw-aggregate",
                    "fleet resharded",
                    from = from,
                    to = target,
                    epoch = self.batcher.epoch(),
                );
            }
            Err(error) => {
                knw_log!(
                    WARN,
                    "knw-aggregate",
                    "reshard failed",
                    from = from,
                    to = target,
                    reached = self.workers.len(),
                    error = error,
                );
            }
        }
        result
    }

    /// One grow step: attach shard `len` and install the `len + 1` epoch
    /// table.  On a hash-affine fleet this splits the parent shard's
    /// journal (see [`scale_to`](Self::scale_to)); failures *before* the
    /// parent's session is severed leave the old fleet untouched.
    fn grow_one(&mut self) -> Result<(), ClusterError> {
        let new_index = self.workers.len();
        let new_count = new_index + 1;
        match self.routing {
            RoutingPolicy::RoundRobin => {
                let conn = open_link(
                    self.transport.as_ref(),
                    new_index,
                    &self.spec,
                    self.recovery,
                )?;
                self.workers.push(conn);
                self.journals.push(ShardJournal::new());
            }
            RoutingPolicy::HashAffine { seed } => {
                let parent = split_parent(new_index);
                let policy = self.recovery.expect("scale_to requires journaling");
                if self.journals[parent].overflowed {
                    return Err(ClusterError::JournalOverflow {
                        worker: parent,
                        cap: policy.journal_cap,
                    });
                }
                // Re-route the parent's journaled updates under the NEW
                // epoch table, preserving their relative order.  Linear
                // hashing guarantees every update stays on `parent` or
                // moves to `new_index` — never a third shard.
                let mut kept: Vec<U> = Vec::new();
                let mut moved: Vec<U> = Vec::new();
                for (frame, _) in &self.journals[parent].frames {
                    for update in decode_journal_frame::<U>(frame) {
                        if epoch_shard_for_key(seed, update.routing_key(), new_count) == new_index {
                            moved.push(update);
                        } else {
                            kept.push(update);
                        }
                    }
                }
                let moved_keys: HashSet<u64> = moved.iter().map(Routable::routing_key).collect();
                let journal_new =
                    ShardJournal::from_split::<U>(self.journals[parent].checkpoint.clone(), &moved);
                let journal_parent = ShardJournal::from_split::<U>(None, &kept);
                let replayed = (journal_new.frames.len() + journal_parent.frames.len()) as u64;
                // Attach the new worker first: if the pool (or spawn)
                // cannot cover it, the old fleet is untouched.
                let new_conn = attach_split_link(
                    self.transport.as_ref(),
                    new_index,
                    &self.spec,
                    self.recovery,
                    &journal_new,
                )?;
                // The worker serve loop is one-session-at-a-time: sever
                // the parent's old session before dialing the fresh one
                // that replays only the kept updates.
                let _ = self.workers[parent].kill();
                let parent_conn = match attach_split_link(
                    self.transport.as_ref(),
                    parent,
                    &self.spec,
                    self.recovery,
                    &journal_parent,
                ) {
                    Ok(conn) => conn,
                    Err(error) => {
                        // The parent's old session is gone and its fresh
                        // one failed: the shard is unreachable — poison
                        // the run so later reports refuse.
                        self.fault.get_or_insert((
                            fault_worker(&error, parent),
                            WorkerFault::from_error(&error),
                        ));
                        return Err(error);
                    }
                };
                self.workers[parent] = parent_conn;
                self.workers.push(new_conn);
                self.journals[parent] = journal_parent;
                self.journals.push(journal_new);
                self.metrics.reshard_replayed_frames.add(replayed);
                self.metrics.reshard_moved_keys.add(moved_keys.len() as u64);
                knw_log!(
                    INFO,
                    "knw-aggregate",
                    "shard split",
                    parent = parent,
                    new_shard = new_index,
                    moved_keys = moved_keys.len(),
                    replayed_frames = replayed,
                );
            }
        }
        self.metrics.ensure_workers(new_count);
        self.batcher.install_epoch(new_count);
        Ok(())
    }

    /// One shrink step: retire the highest shard into its split parent and
    /// install the shrunk epoch table.  Any failure past the retiree's
    /// `Finish` poisons the run — a fleet short one shard's updates cannot
    /// be trusted.
    fn shrink_one(&mut self) -> Result<(), ClusterError> {
        let retiree = self.workers.len() - 1;
        let survivor = split_parent(retiree);
        match self.shrink_step(retiree, survivor) {
            Ok(()) => Ok(()),
            Err(error) => {
                self.fault.get_or_insert((
                    fault_worker(&error, retiree),
                    WorkerFault::from_error(&error),
                ));
                Err(error)
            }
        }
    }

    fn shrink_step(&mut self, retiree: usize, survivor: usize) -> Result<(), ClusterError> {
        // Drain the retiree (Finish + final shard, with the usual one-shot
        // recovery) and grab the survivor's live shard.
        let (retired_bytes, survivor_bytes) = {
            let mut links = self.links();
            links.send_finish(retiree)?;
            let retired = links.collect_final_shard(retiree)?;
            let survivor_bytes = links.snapshot_one(survivor)?;
            (retired, survivor_bytes)
        };
        // Fold the retired shard into the survivor — the shard its keys
        // route to under the shrunk table — and restart the survivor from
        // the merged bytes as its new checkpoint.
        let mut merged = U::shard_from_bytes(&self.spec, &survivor_bytes).map_err(|message| {
            ClusterError::Frame {
                worker: survivor,
                message,
            }
        })?;
        let retired = U::shard_from_bytes(&self.spec, &retired_bytes).map_err(|message| {
            ClusterError::Frame {
                worker: retiree,
                message,
            }
        })?;
        U::merge(merged.as_mut(), retired.as_ref())?;
        let mut journal = ShardJournal::new();
        journal.checkpoint = Some(U::shard_bytes(merged.as_ref()));
        // One-session-at-a-time: sever the survivor's old session before
        // dialing the fresh one that restores the merged checkpoint.
        let _ = self.workers[survivor].kill();
        let conn = attach_split_link(
            self.transport.as_ref(),
            survivor,
            &self.spec,
            self.recovery,
            &journal,
        )?;
        self.workers[survivor] = conn;
        self.journals[survivor] = journal;
        // Pop the highest index LAST, so no survivor's index ever shifts;
        // the transport returns the retired worker's address to its pool.
        drop(self.workers.pop());
        self.journals.pop();
        self.transport.retire(retiree);
        self.batcher.install_epoch(retiree);
        knw_log!(
            INFO,
            "knw-aggregate",
            "shard retired",
            retiree = retiree,
            survivor = survivor,
        );
        Ok(())
    }

    /// Requests a shard snapshot from every worker and merges them (plus
    /// any locally buffered updates) into one sketch summarizing every
    /// update ingested so far.  The cluster keeps running — this is the
    /// paper's midstream "reporting".
    ///
    /// With recovery enabled, a worker lost during the exchange is
    /// reconnected and replayed *inside* this call (the snapshot waits for
    /// the recovery — it never merges a partial cluster), and an
    /// acknowledged snapshot doubles as the journals' checkpoint: each
    /// worker's serialized shard bytes replace its batch log, so journal
    /// memory is bounded by snapshot cadence, not stream length.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerDied`] if a worker process died (its updates
    /// are unrecoverable), [`ClusterError::RecoveryExhausted`] /
    /// [`ClusterError::JournalOverflow`] if recovery was enabled but could
    /// not rebuild it, or the transport / codec / merge failure.
    pub fn snapshot(&mut self) -> Result<Box<U::Shard>, ClusterError> {
        if let Some((worker, fault)) = &self.fault {
            return Err(fault.to_error(*worker));
        }
        // *Any* failure below leaves the request/reply conversation in an
        // unknown state (some workers may still have a Shard reply queued),
        // so it poisons the aggregator: later reports refuse instead of
        // silently merging stale shards.  (Recoverable link faults were
        // already retried under the policy inside the exchange.)
        let started = std::time::Instant::now();
        let result = self.snapshot_exchange();
        self.metrics
            .snapshot_latency
            .record_duration(started.elapsed());
        if let Err((index, error)) = &result {
            self.fault
                .get_or_insert((*index, WorkerFault::from_error(error)));
        }
        let (mut merged, shards) = result.map_err(|(_, error)| error)?;
        if self.recovery.is_some() {
            for (journal, bytes) in self.journals.iter_mut().zip(shards) {
                journal.truncate_to_checkpoint(bytes);
            }
        }
        // Fold in the locally buffered (not yet shipped) updates, exactly
        // like the in-process router's midstream `merged()`.
        self.batcher.for_each_pending(|batch| {
            U::apply(merged.as_mut(), batch);
        });
        Ok(merged)
    }

    /// The snapshot request/reply round (with per-worker recovery, see
    /// [`LinkSet::snapshot_shards`]) plus the merge fold; every failure is
    /// attributed to the worker index it happened on.  Returns the merged
    /// sketch *and* the per-worker shard bytes (the journals' checkpoint
    /// material).
    #[allow(clippy::type_complexity)]
    fn snapshot_exchange(
        &mut self,
    ) -> Result<(Box<U::Shard>, Vec<Vec<u8>>), (usize, ClusterError)> {
        let shards = self.links().snapshot_shards()?;
        let mut merged: Option<Box<U::Shard>> = None;
        for (index, bytes) in shards.iter().enumerate() {
            let shard = U::shard_from_bytes(&self.spec, bytes).map_err(|message| {
                (
                    index,
                    ClusterError::Frame {
                        worker: index,
                        message,
                    },
                )
            })?;
            match &mut merged {
                None => merged = Some(shard),
                Some(into) => U::merge(into.as_mut(), shard.as_ref())
                    .map_err(|e| (index, ClusterError::Sketch(e)))?,
            }
        }
        Ok((
            merged.expect("cluster always has at least one worker"),
            shards,
        ))
    }

    /// Snapshots and reports the current estimate.
    ///
    /// # Errors
    ///
    /// Same as [`snapshot`](Self::snapshot).
    pub fn estimate(&mut self) -> Result<f64, ClusterError> {
        Ok(U::estimate(self.snapshot()?.as_ref()))
    }

    /// Ships all pending batches, sends `Finish`, collects every worker's
    /// final shard, waits for the processes to exit, and returns the merged
    /// sketch of the whole stream.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerDied`] if a worker process died or exited
    /// uncleanly, or the transport / codec / merge failure.  Remaining
    /// workers are killed on the error path (no orphans).
    pub fn finish(mut self) -> Result<Box<U::Shard>, ClusterError> {
        self.flush();
        if let Some((worker, fault)) = &self.fault {
            return Err(fault.to_error(*worker));
        }
        // Fan the Finish requests out to every worker before collecting any
        // shard (as `snapshot` does), so the workers drain their links,
        // serialize and wind down concurrently: shutdown latency is the
        // slowest worker's, not the sum.  `send_finish` half-closes each
        // link — the belt to the Finish suspenders: a worker that somehow
        // missed the frame still sees EOF and winds the session down.
        // Both steps recover a faulted link once (reconnect, replay the
        // journal, re-`Finish`) when a policy is configured.
        let worker_count = self.workers.len();
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(worker_count);
        {
            let mut links = self.links();
            for index in 0..worker_count {
                links.send_finish(index)?;
            }
            for index in 0..worker_count {
                shards.push(links.collect_final_shard(index)?);
            }
        }
        let mut merged: Option<Box<U::Shard>> = None;
        for (index, bytes) in shards.iter().enumerate() {
            let shard =
                U::shard_from_bytes(&self.spec, bytes).map_err(|message| ClusterError::Frame {
                    worker: index,
                    message,
                })?;
            match &mut merged {
                None => merged = Some(shard),
                Some(into) => U::merge(into.as_mut(), shard.as_ref())?,
            }
        }
        Ok(merged.expect("cluster always has at least one worker"))
    }
}

/// Opens (and greets) the link to worker `index`, retrying under the
/// recovery policy — including registry re-resolution via
/// [`Transport::reopen`] — when one is configured.
fn open_link(
    transport: &dyn Transport,
    index: usize,
    spec: &SketchSpec,
    recovery: Option<RecoveryPolicy>,
) -> Result<Box<dyn WorkerConnection>, ClusterError> {
    let hello = Frame::Hello(HelloConfig {
        worker_index: index as u64,
        spec: spec.clone(),
    });
    let open_once = |first: bool| -> Result<Box<dyn WorkerConnection>, ClusterError> {
        let mut conn = if first {
            transport.open(index)?
        } else {
            transport.reopen(index)?
        };
        conn.send(&hello).map_err(|e| wire_fault(index, e))?;
        Ok(conn)
    };
    let mut last = match open_once(true) {
        Ok(conn) => return Ok(conn),
        Err(e) => e,
    };
    let Some(policy) = recovery else {
        return Err(last);
    };
    for attempt in 2..=policy.max_retries {
        std::thread::sleep(policy.backoff * (attempt as u32 - 1));
        match open_once(false) {
            Ok(conn) => return Ok(conn),
            Err(e) => last = e,
        }
    }
    Err(ClusterError::RecoveryExhausted {
        worker: index,
        attempts: policy.max_retries,
        last: last.to_string(),
    })
}

/// Opens (and greets) a fresh session for shard `index` and primes it from
/// `journal`: `Restore` the checkpoint (if any), then replay every frame —
/// exactly the recovery replay shape, reused by resharding to attach split
/// and merged shards.
fn attach_split_link(
    transport: &dyn Transport,
    index: usize,
    spec: &SketchSpec,
    recovery: Option<RecoveryPolicy>,
    journal: &ShardJournal,
) -> Result<Box<dyn WorkerConnection>, ClusterError> {
    let mut conn = open_link(transport, index, spec, recovery)?;
    if let Some(bytes) = &journal.checkpoint {
        conn.send(&Frame::Restore(bytes.clone()))
            .map_err(|e| wire_fault(index, e))?;
    }
    for (frame, _) in &journal.frames {
        conn.send_raw(frame).map_err(|e| wire_fault(index, e))?;
    }
    Ok(conn)
}

/// The worker index an error names, or `fallback` for errors that do not
/// carry one — used to attribute a mid-reshard failure to the right shard
/// when poisoning the run.
fn fault_worker(error: &ClusterError, fallback: usize) -> usize {
    match error {
        ClusterError::Io {
            worker: Some(worker),
            ..
        }
        | ClusterError::Frame { worker, .. }
        | ClusterError::WorkerDied { worker }
        | ClusterError::ConnectFailed { worker, .. }
        | ClusterError::Timeout { worker }
        | ClusterError::Desynced { worker }
        | ClusterError::Protocol { worker, .. }
        | ClusterError::WorkerReported { worker, .. }
        | ClusterError::RecoveryExhausted { worker, .. }
        | ClusterError::JournalOverflow { worker, .. } => *worker,
        _ => fallback,
    }
}

// Dropping a `ClusterAggregator` drops its worker links; each transport's
// connection reaps its own resources (`PipeConnection` kills and waits on
// the child, sockets just close), so an abandoned — or failed — aggregator
// leaves no orphan processes behind.

/// Reads the final-shard reply a `Finish` request promises: the shard
/// bytes, preceded by the worker's session counters ([`Frame::Stats`])
/// when the worker reports them.  The stats frame is optional on the read
/// side so sessions that end before `Finish` handling (or older workers)
/// still hand their shard over.
fn read_final_shard(
    conn: &mut dyn WorkerConnection,
    index: usize,
) -> Result<(Option<WorkerStats>, Vec<u8>), ClusterError> {
    match conn.recv() {
        Ok(Some(Frame::Stats(stats))) => read_shard(conn, index).map(|bytes| (Some(stats), bytes)),
        Ok(Some(Frame::Shard(bytes))) => Ok((None, bytes)),
        Ok(Some(Frame::Err(message))) => Err(ClusterError::WorkerReported {
            worker: index,
            message,
        }),
        Ok(Some(other)) => Err(ClusterError::Protocol {
            worker: index,
            expected: "Shard",
            got: other.kind().to_string(),
        }),
        Ok(None) | Err(WireError::Truncated) => Err(ClusterError::WorkerDied { worker: index }),
        Err(e) => Err(wire_fault(index, e)),
    }
}

/// Reads the `Shard` reply a `Snapshot`/`Finish` request promises.
fn read_shard(conn: &mut dyn WorkerConnection, index: usize) -> Result<Vec<u8>, ClusterError> {
    match conn.recv() {
        Ok(Some(Frame::Shard(bytes))) => Ok(bytes),
        Ok(Some(Frame::Err(message))) => Err(ClusterError::WorkerReported {
            worker: index,
            message,
        }),
        Ok(Some(other)) => Err(ClusterError::Protocol {
            worker: index,
            expected: "Shard",
            got: other.kind().to_string(),
        }),
        Ok(None) | Err(WireError::Truncated) => Err(ClusterError::WorkerDied { worker: index }),
        Err(e) => Err(wire_fault(index, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A connection that records every frame it is asked to send.
    struct RecordingConnection {
        frames: Arc<Mutex<Vec<Frame>>>,
    }

    impl WorkerConnection for RecordingConnection {
        fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
            self.frames.lock().expect("frames lock").push(frame.clone());
            Ok(())
        }

        fn recv(&mut self) -> Result<Option<Frame>, WireError> {
            Ok(None)
        }

        fn close_send(&mut self) {}

        fn kill(&mut self) -> std::io::Result<()> {
            Ok(())
        }

        fn confirm_finished(&mut self) -> std::io::Result<bool> {
            Ok(true)
        }
    }

    /// Pins the encoding law the frame chunker's arithmetic rests on: a
    /// `Batch` frame's payload is exactly `BATCH_FRAME_OVERHEAD` bytes of
    /// framing plus `WIRE_BYTES` per update, for both stream models.
    #[test]
    fn batch_frame_encoding_is_overhead_plus_fixed_width_updates() {
        for n in [0usize, 1, 3, 100] {
            let items = Frame::Batch(BatchPayload::Items(vec![7; n]));
            assert_eq!(
                serde::to_bytes(&items).len(),
                BATCH_FRAME_OVERHEAD + n * <u64 as ClusterUpdate>::WIRE_BYTES,
                "Items({n})"
            );
            let updates = Frame::Batch(BatchPayload::Updates(vec![(7, -7); n]));
            assert_eq!(
                serde::to_bytes(&updates).len(),
                BATCH_FRAME_OVERHEAD + n * <(u64, i64) as ClusterUpdate>::WIRE_BYTES,
                "Updates({n})"
            );
        }
    }

    /// The frame cap sits exactly at `MAX_FRAME_LEN`: a batch of `cap`
    /// updates encodes to at most the limit, one more update crosses it —
    /// the `MAX_FRAME_LEN ± 1` boundary, checked through the encoding law
    /// pinned above (materializing a 256 MiB frame in a unit test would
    /// prove nothing more).
    #[test]
    fn frame_chunk_cap_sits_exactly_at_max_frame_len() {
        let f0_cap = max_updates_per_frame::<u64>();
        assert!(BATCH_FRAME_OVERHEAD + f0_cap * 8 <= MAX_FRAME_LEN);
        assert!(BATCH_FRAME_OVERHEAD + (f0_cap + 1) * 8 > MAX_FRAME_LEN);
        let l0_cap = max_updates_per_frame::<(u64, i64)>();
        assert!(BATCH_FRAME_OVERHEAD + l0_cap * 16 <= MAX_FRAME_LEN);
        assert!(BATCH_FRAME_OVERHEAD + (l0_cap + 1) * 16 > MAX_FRAME_LEN);
    }

    /// The hand-rolled encoder produces, byte for byte, what the codec's
    /// `write_frame` produces for the same batch — the law that lets the
    /// dispatch path skip `Frame` construction entirely, for both stream
    /// models, including the empty batch and sign-extreme values.
    #[test]
    fn encoded_batch_frames_are_byte_identical_to_the_codec() {
        use crate::frame::write_frame;
        let mut buf = Vec::new();
        for n in [0usize, 1, 3, 100] {
            let items: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .chain((n > 0).then_some(u64::MAX))
                .collect();
            encode_batch_frame(&mut buf, &items);
            let mut reference = Vec::new();
            write_frame(&mut reference, &Frame::Batch(BatchPayload::Items(items))).expect("write");
            assert_eq!(buf, reference, "Items({n})");

            let updates: Vec<(u64, i64)> = (0..n as u64)
                .map(|i| (i, -(i as i64) - 1))
                .chain((n > 0).then_some((u64::MAX, i64::MIN)))
                .collect();
            encode_batch_frame(&mut buf, &updates);
            let mut reference = Vec::new();
            write_frame(
                &mut reference,
                &Frame::Batch(BatchPayload::Updates(updates)),
            )
            .expect("write");
            assert_eq!(buf, reference, "Updates({n})");
        }
    }

    /// Splitting behaviour at the cap: `cap` updates are one frame, `cap +
    /// 1` are two (the second carrying the single overflow update), and the
    /// concatenation preserves the update sequence exactly.  The recording
    /// double observes *decoded* frames through `send_raw`'s default
    /// decode-and-delegate, so this also exercises that round trip.
    #[test]
    fn oversized_batches_are_chunked_at_the_send_boundary() {
        let frames = Arc::new(Mutex::new(Vec::new()));
        let mut conn = RecordingConnection {
            frames: Arc::clone(&frames),
        };
        let mut buf = Vec::new();
        let cap = 5usize; // small injected cap; the arithmetic test pins the real one
        let batch: Vec<u64> = (0..cap as u64).collect();
        send_encoded_batch_capped(&mut conn, 0, &batch, cap, &mut buf, None).expect("send");
        let batch: Vec<u64> = (0..cap as u64 + 1).collect();
        send_encoded_batch_capped(&mut conn, 0, &batch, cap, &mut buf, None).expect("send");
        let frames = frames.lock().expect("frames lock");
        let lens: Vec<usize> = frames
            .iter()
            .map(|f| match f {
                Frame::Batch(payload) => payload.len(),
                other => panic!("expected Batch, got {}", other.kind()),
            })
            .collect();
        assert_eq!(lens, vec![cap, cap, 1]);
        let mut replayed = Vec::new();
        for frame in frames.iter().skip(1) {
            let Frame::Batch(BatchPayload::Items(items)) = frame else {
                panic!("expected Items");
            };
            replayed.extend_from_slice(items);
        }
        assert_eq!(replayed, (0..cap as u64 + 1).collect::<Vec<_>>());
    }

    /// An empty routed batch must not reach the wire (or the journal): no
    /// frame is emitted for it, while a following non-empty batch flows
    /// normally.
    #[test]
    fn empty_batches_emit_no_frame_and_journal_nothing() {
        let frames = Arc::new(Mutex::new(Vec::new()));
        let mut workers: Vec<Box<dyn WorkerConnection>> = vec![Box::new(RecordingConnection {
            frames: Arc::clone(&frames),
        })];
        let mut fault = None;
        let mut journals = vec![ShardJournal::new()];
        let mut send_buf = Vec::new();
        let transport = PipeTransport::new("unused");
        let spec = SketchSpec::f0("knw-f0", 0.25, 1 << 20, 7);
        let metrics = AggregatorMetrics::register(1);
        let mut links: LinkSet<'_, u64> = LinkSet {
            workers: &mut workers,
            fault: &mut fault,
            journals: &mut journals,
            transport: &transport,
            recovery: Some(RecoveryPolicy::default()),
            spec: &spec,
            send_buf: &mut send_buf,
            metrics: &metrics,
            _update: std::marker::PhantomData,
        };
        links.dispatch(0, Vec::new());
        links.dispatch(0, vec![42]);
        let frames = frames.lock().expect("frames lock");
        assert_eq!(frames.len(), 1, "only the non-empty batch is framed");
        assert_eq!(
            *frames.first().expect("one frame"),
            Frame::Batch(BatchPayload::Items(vec![42]))
        );
        assert_eq!(journals[0].frames.len(), 1, "empty batch journals nothing");
        assert_eq!(journals[0].journaled, 1);
    }

    /// The journal records frames up to its update cap, discards itself on
    /// overflow, and re-anchors (clearing the overflow) on a checkpoint.
    #[test]
    fn journal_caps_and_checkpoints() {
        let frame_of = |items: &[u64]| -> Arc<[u8]> {
            let mut buf = Vec::new();
            encode_batch_frame(&mut buf, items);
            buf.into()
        };
        let mut journal = ShardJournal::new();
        journal.record(frame_of(&[1, 2, 3]), 3, 5);
        assert_eq!(journal.journaled, 3);
        assert!(!journal.overflowed);
        // 3 + 3 > 5: the journal overflows and frees its frames.
        journal.record(frame_of(&[4, 5, 6]), 3, 5);
        assert!(journal.overflowed);
        assert!(journal.frames.is_empty());
        assert_eq!(journal.journaled, 0);
        // Further frames are not accumulated while overflowed.
        journal.record(frame_of(&[7]), 1, 5);
        assert!(journal.frames.is_empty());
        // A checkpoint re-anchors and re-arms the journal.
        journal.truncate_to_checkpoint(vec![0xAB]);
        assert!(!journal.overflowed);
        assert_eq!(journal.checkpoint.as_deref(), Some(&[0xAB][..]));
        journal.record(frame_of(&[8, 9]), 2, 5);
        assert_eq!(journal.journaled, 2);
        assert_eq!(journal.frames.len(), 1);
        assert_eq!(
            journal.frames[0].0.as_ref(),
            frame_of(&[8, 9]).as_ref(),
            "the journal holds the encoded frame bytes"
        );
    }
}
