//! The aggregator side: reaches N workers through a [`Transport`] — spawned
//! child processes on stdin/stdout pipes ([`PipeTransport`], via
//! [`ClusterAggregator::spawn`]) or already-running remote workers on TCP
//! sockets ([`TcpTransport`], via [`ClusterAggregator::connect_workers`]) —
//! streams batches to them over the frame protocol using the *same* routing
//! stage as the in-process engine ([`knw_engine::ShardBatcher`]), and
//! merges their serialized shards into one sketch.
//!
//! ```text
//!        ingest / ingest_batch  (U = u64 or (item, ±delta))
//!                     │
//!          ┌──────────▼──────────┐   optional pre-coalescing
//!          │  ShardBatcher       │   (per-item delta sums, L0 only)
//!          │  RoundRobin/HashAff │
//!          └──────────┬──────────┘
//!     Batch frames    │  (length-prefixed serde codec,
//!                     │   pipes or TCP sockets)
//!      ┌──────────┬───┴──────┬──────────────┐
//! ┌────▼───┐ ┌────▼───┐ ┌────▼───┐    ┌────▼───┐
//! │worker 0│ │worker 1│ │worker 2│  … │worker N│   child processes or
//! │ sketch │ │ sketch │ │ sketch │    │ sketch │   listening hosts,
//! └────┬───┘ └────┬───┘ └────┬───┘    └────┬───┘   one shard each
//!      └──────────┴─────┬────┴──────────────┘
//!       Shard{bytes}    │  (pipes / sockets back)
//!                deserialize + merge_dyn fold
//!                       │
//!                  estimate()
//! ```
//!
//! Because the batcher, policies and batch sizes are shared with
//! [`ShardRouter`](knw_engine::ShardRouter) / `ShardedEngine`, a cluster
//! run's shard contents are identical to an in-process run's — and since
//! every sketch in the workspace merges exactly, the final estimate is
//! bit-identical to a single-process, single-sketch run over the same
//! stream.

use crate::error::ClusterError;
use crate::frame::{BatchPayload, Frame, HelloConfig, SketchSpec, StreamMode, WireError};
use crate::spec::{build_f0, build_l0, f0_shard_from_bytes, l0_shard_from_bytes};
use crate::spec::{WireF0Sketch, WireL0Sketch};
use crate::transport::{
    PipeTransport, TcpClusterConfig, TcpTransport, Transport, WorkerConnection,
};
use knw_core::{DynMergeableCardinalityEstimator, DynMergeableTurnstileEstimator, SketchError};
use knw_engine::{EngineConfig, Routable, ShardBatcher};
use std::path::PathBuf;

/// An update type the cluster can stream: ties the routing-stage contract
/// ([`Routable`]) to the wire format (payload framing, shard construction,
/// deserialization and merging) for its stream model.
///
/// Implemented for `u64` (insert-only F0 workers) and `(u64, i64)`
/// (turnstile L0 workers); never implement it manually.
pub trait ClusterUpdate: Routable {
    /// The erased shard-sketch type of this stream model.
    type Shard: ?Sized;

    /// The stream model tag sent in the `Hello` frame.
    fn mode() -> StreamMode;

    /// Wraps a routed batch into the wire payload.
    fn payload(batch: Vec<Self>) -> BatchPayload;

    /// Builds a fresh local sketch for `spec` (used to validate the spec
    /// before spawning, and by single-process comparisons).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] for names outside the zoo.
    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError>;

    /// Decodes a worker's shard bytes; the error is the codec's message.
    ///
    /// # Errors
    ///
    /// The codec rejection, as a message the caller attributes to a worker.
    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String>;

    /// Applies buffered (not yet dispatched) updates to a merged snapshot.
    fn apply(shard: &mut Self::Shard, batch: &[Self]);

    /// Merges `other` into `into` (exact for every workspace sketch).
    ///
    /// # Errors
    ///
    /// The sketch-level incompatibility, if the shards disagree on
    /// configuration or seeds.
    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError>;

    /// The shard's current estimate.
    fn estimate(shard: &Self::Shard) -> f64;
}

impl ClusterUpdate for u64 {
    type Shard = dyn WireF0Sketch;

    fn mode() -> StreamMode {
        StreamMode::F0
    }

    fn payload(batch: Vec<u64>) -> BatchPayload {
        BatchPayload::Items(batch)
    }

    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError> {
        build_f0(spec)
    }

    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String> {
        f0_shard_from_bytes(spec, bytes)
    }

    fn apply(shard: &mut Self::Shard, batch: &[u64]) {
        shard.insert_batch(batch);
    }

    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError> {
        into.merge_dyn(other as &dyn DynMergeableCardinalityEstimator)
    }

    fn estimate(shard: &Self::Shard) -> f64 {
        shard.estimate()
    }
}

impl ClusterUpdate for (u64, i64) {
    type Shard = dyn WireL0Sketch;

    fn mode() -> StreamMode {
        StreamMode::L0
    }

    fn payload(batch: Vec<(u64, i64)>) -> BatchPayload {
        BatchPayload::Updates(batch)
    }

    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError> {
        build_l0(spec)
    }

    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String> {
        l0_shard_from_bytes(spec, bytes)
    }

    fn apply(shard: &mut Self::Shard, batch: &[(u64, i64)]) {
        shard.update_batch(batch);
    }

    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError> {
        into.merge_dyn(other as &dyn DynMergeableTurnstileEstimator)
    }

    fn estimate(shard: &Self::Shard) -> f64 {
        shard.estimate()
    }
}

/// Cluster sizing: the shared engine knobs (shard count = worker count,
/// batch size, routing policy, pre-coalescing) plus the path of the worker
/// executable to spawn.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Routing knobs, shared verbatim with the in-process engine.
    pub engine: EngineConfig,
    /// Path to the `knw-worker` executable.
    pub worker_exe: PathBuf,
}

impl ClusterConfig {
    /// Creates a cluster configuration for `workers` worker processes using
    /// the given worker executable.
    #[must_use]
    pub fn new(workers: usize, worker_exe: impl Into<PathBuf>) -> Self {
        Self {
            engine: EngineConfig::new(workers),
            worker_exe: worker_exe.into(),
        }
    }

    /// Replaces the engine knobs (batch size, routing, pre-coalescing),
    /// keeping the worker count consistent with `engine.shards`.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Locates the sibling `knw-worker` binary next to the current executable
/// (handling cargo's `target/<profile>/deps/` layout for tests and
/// benches).  Returns `None` when no such file exists — e.g. when only the
/// library was built.
#[must_use]
pub fn sibling_worker_exe() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("knw-worker");
    candidate.is_file().then_some(candidate)
}

/// How a worker link failed mid-stream; replayed as the matching typed
/// error at the next report.
#[derive(Debug, Clone, Copy)]
enum WorkerFault {
    /// The link broke (dead process, reset connection, EOF).
    Died,
    /// The link timed out (stalled or half-open peer).
    TimedOut,
    /// An exchange failed without killing the link (codec rejection,
    /// protocol violation, merge failure): the conversation state is
    /// unknown — batches may be lost, reply frames may still be queued —
    /// so later reports refuse instead of silently under-merging.
    Desynced,
}

impl WorkerFault {
    fn to_error(self, worker: usize) -> ClusterError {
        match self {
            WorkerFault::Died => ClusterError::WorkerDied { worker },
            WorkerFault::TimedOut => ClusterError::Timeout { worker },
            WorkerFault::Desynced => ClusterError::Protocol {
                worker,
                expected: "Shard",
                got: "a link desynchronized by an earlier failure".to_string(),
            },
        }
    }

    /// The sticky fault a snapshot-path error leaves behind.
    fn from_error(error: &ClusterError) -> Self {
        match error {
            ClusterError::WorkerDied { .. } => WorkerFault::Died,
            ClusterError::Timeout { .. } => WorkerFault::TimedOut,
            _ => WorkerFault::Desynced,
        }
    }
}

/// Maps a wire-level failure on worker `index`'s link to the aggregation
/// error it means: broken links are dead workers, expired deadlines are
/// stalled workers, everything else keeps its I/O or codec identity.
fn wire_fault(index: usize, error: WireError) -> ClusterError {
    use std::io::ErrorKind;
    match error {
        WireError::Io(e) => match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
                ClusterError::WorkerDied { worker: index }
            }
            ErrorKind::TimedOut | ErrorKind::WouldBlock => ClusterError::Timeout { worker: index },
            _ => ClusterError::io(index, e),
        },
        e => ClusterError::Frame {
            worker: index,
            message: e.to_string(),
        },
    }
}

/// The multi-process aggregation engine: the cross-process sibling of
/// [`ShardedEngine`](knw_engine::ShardedEngine), with worker *processes*
/// instead of worker threads and serialized shards instead of cloned ones.
///
/// A worker crash mirrors the in-process
/// [`SketchError::ShardPanicked`](knw_core::SketchError::ShardPanicked)
/// philosophy: the lost shard's updates cannot be recovered, so reporting
/// refuses with [`ClusterError::WorkerDied`] instead of silently
/// undercounting.
pub struct ClusterAggregator<U: ClusterUpdate> {
    spec: SketchSpec,
    workers: Vec<Box<dyn WorkerConnection>>,
    batcher: ShardBatcher<U>,
    precoalesce: bool,
    updates: u64,
    /// First worker whose link failed mid-stream, and how.
    fault: Option<(usize, WorkerFault)>,
}

/// The insert-only (F0) front of [`ClusterAggregator`].
pub type F0ClusterAggregator = ClusterAggregator<u64>;

/// The turnstile (L0) front of [`ClusterAggregator`].
pub type L0ClusterAggregator = ClusterAggregator<(u64, i64)>;

impl<U: ClusterUpdate> ClusterAggregator<U> {
    /// Spawns `config.engine.shards` worker processes on stdin/stdout pipes
    /// ([`PipeTransport`]) and performs the `Hello` handshake.  The spec's
    /// stream model is forced to `U`'s.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] if the spec names a sketch
    /// outside the zoo (validated *before* spawning anything), or an
    /// [`ClusterError::Io`] if a worker cannot be spawned or greeted.
    pub fn spawn(config: &ClusterConfig, spec: &SketchSpec) -> Result<Self, ClusterError> {
        let transport = PipeTransport::new(&config.worker_exe);
        Self::start(&transport, config.engine, spec)
    }

    /// Connects to already-running workers (`knw-worker --listen <addr>`)
    /// over TCP ([`TcpTransport`]) and performs the `Hello` handshake — the
    /// multi-host topology.  One shard per address, in order; routing knobs
    /// and timeouts come from `config`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] for specs outside the zoo
    /// (validated *before* connecting anything), or
    /// [`ClusterError::ConnectFailed`] naming the first worker address
    /// that could not be reached.
    pub fn connect(config: &TcpClusterConfig, spec: &SketchSpec) -> Result<Self, ClusterError> {
        if config.addrs.is_empty() {
            // `with_shards` clamps 0 to 1, so an empty address list would
            // otherwise reach `open(0)` and panic; refuse it typed instead.
            return Err(ClusterError::Io {
                worker: None,
                source: std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "a TCP cluster needs at least one worker address",
                ),
            });
        }
        let transport = TcpTransport::new(config);
        let engine = config.engine.with_shards(config.addrs.len());
        Self::start(&transport, engine, spec)
    }

    /// Connects to already-running TCP workers with default routing knobs
    /// and timeouts — the `&[addr]` front of [`connect`](Self::connect).
    ///
    /// # Errors
    ///
    /// Same as [`connect`](Self::connect).
    pub fn connect_workers<A: AsRef<str>>(
        addrs: &[A],
        spec: &SketchSpec,
    ) -> Result<Self, ClusterError> {
        Self::connect(
            &TcpClusterConfig::new(addrs.iter().map(AsRef::as_ref)),
            spec,
        )
    }

    /// The transport-agnostic constructor: opens one link per shard through
    /// `transport` and greets each worker.
    fn start(
        transport: &dyn Transport,
        engine: EngineConfig,
        spec: &SketchSpec,
    ) -> Result<Self, ClusterError> {
        let mut spec = spec.clone();
        spec.mode = U::mode();
        // Fail fast on bad specs, before any process or connection exists.
        let _ = U::build(&spec)?;

        let engine = engine.normalized();
        let mut workers: Vec<Box<dyn WorkerConnection>> = Vec::with_capacity(engine.shards);
        for index in 0..engine.shards {
            let mut conn = transport.open(index)?;
            let hello = Frame::Hello(HelloConfig {
                worker_index: index as u64,
                spec: spec.clone(),
            });
            conn.send(&hello).map_err(|e| wire_fault(index, e))?;
            workers.push(conn);
        }
        Ok(Self {
            spec,
            workers,
            batcher: ShardBatcher::new(engine.routing, engine.shards, engine.batch_size),
            precoalesce: engine.precoalesce && U::coalescible(),
            updates: 0,
            fault: None,
        })
    }

    /// The spec every worker was configured with.
    #[must_use]
    pub fn spec(&self) -> &SketchSpec {
        &self.spec
    }

    /// Number of worker processes.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total updates routed so far (raw, before any pre-coalescing).
    #[must_use]
    pub fn items_ingested(&self) -> u64 {
        self.updates
    }

    /// Routes one update (buffered; shipped once a batch fills up).
    pub fn ingest(&mut self, update: U) {
        self.updates += 1;
        let (workers, fault) = (&mut self.workers, &mut self.fault);
        self.batcher.push(update, &mut |worker, batch| {
            send_batch::<U>(workers, fault, worker, batch);
        });
    }

    /// Routes a slice of updates.  With pre-coalescing enabled, turnstile
    /// batches are first collapsed to per-item delta sums so workers
    /// receive fewer, pre-summed updates — less wire traffic, same final
    /// state for every linear sketch.
    pub fn ingest_batch(&mut self, updates: &[U]) {
        self.updates += updates.len() as u64;
        let (workers, fault) = (&mut self.workers, &mut self.fault);
        let mut dispatch = |worker: usize, batch: Vec<U>| {
            send_batch::<U>(workers, fault, worker, batch);
        };
        if self.precoalesce {
            let coalesced = U::coalesce_batch(updates);
            self.batcher.extend_from_slice(&coalesced, &mut dispatch);
        } else {
            self.batcher.extend_from_slice(updates, &mut dispatch);
        }
    }

    /// Ships every (possibly partial) pending batch to its worker.
    pub fn flush(&mut self) {
        let (workers, fault) = (&mut self.workers, &mut self.fault);
        self.batcher.flush(&mut |worker, batch| {
            send_batch::<U>(workers, fault, worker, batch);
        });
    }

    /// Severs one worker's link — a fault-injection / operations hook
    /// (e.g. evicting a wedged worker).  Kills the child process on the
    /// pipe transport, shuts the socket down on TCP.  The next report will
    /// surface [`ClusterError::WorkerDied`] for it.
    ///
    /// # Errors
    ///
    /// The underlying `kill(2)` / `shutdown(2)` failure, if any.
    pub fn kill_worker(&mut self, worker: usize) -> std::io::Result<()> {
        self.workers[worker].kill()
    }

    /// Requests a shard snapshot from every worker and merges them (plus
    /// any locally buffered updates) into one sketch summarizing every
    /// update ingested so far.  The cluster keeps running — this is the
    /// paper's midstream "reporting".
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerDied`] if a worker process died (its updates
    /// are unrecoverable), or the transport / codec / merge failure.
    pub fn snapshot(&mut self) -> Result<Box<U::Shard>, ClusterError> {
        if let Some((worker, fault)) = self.fault {
            return Err(fault.to_error(worker));
        }
        // *Any* failure below leaves the request/reply conversation in an
        // unknown state (some workers may still have a Shard reply queued),
        // so it poisons the aggregator: later reports refuse instead of
        // silently merging stale shards.
        let result = self.snapshot_exchange();
        if let Err((index, error)) = &result {
            self.fault
                .get_or_insert((*index, WorkerFault::from_error(error)));
        }
        let mut merged = result.map_err(|(_, error)| error)?;
        // Fold in the locally buffered (not yet shipped) updates, exactly
        // like the in-process router's midstream `merged()`.
        self.batcher.for_each_pending(|batch| {
            U::apply(merged.as_mut(), batch);
        });
        Ok(merged)
    }

    /// The snapshot request/reply round, with every failure attributed to
    /// the worker index it happened on (for fault bookkeeping).
    fn snapshot_exchange(&mut self) -> Result<Box<U::Shard>, (usize, ClusterError)> {
        // Fan the snapshot requests out before collecting any reply, so the
        // workers drain their links and serialize concurrently.
        for index in 0..self.workers.len() {
            if let Err(e) = self.workers[index].send(&Frame::Snapshot) {
                return Err((index, wire_fault(index, e)));
            }
        }
        let mut merged: Option<Box<U::Shard>> = None;
        for index in 0..self.workers.len() {
            let bytes = read_shard(self.workers[index].as_mut(), index).map_err(|e| (index, e))?;
            let shard = U::shard_from_bytes(&self.spec, &bytes).map_err(|message| {
                (
                    index,
                    ClusterError::Frame {
                        worker: index,
                        message,
                    },
                )
            })?;
            match &mut merged {
                None => merged = Some(shard),
                Some(into) => U::merge(into.as_mut(), shard.as_ref())
                    .map_err(|e| (index, ClusterError::Sketch(e)))?,
            }
        }
        Ok(merged.expect("cluster always has at least one worker"))
    }

    /// Snapshots and reports the current estimate.
    ///
    /// # Errors
    ///
    /// Same as [`snapshot`](Self::snapshot).
    pub fn estimate(&mut self) -> Result<f64, ClusterError> {
        Ok(U::estimate(self.snapshot()?.as_ref()))
    }

    /// Ships all pending batches, sends `Finish`, collects every worker's
    /// final shard, waits for the processes to exit, and returns the merged
    /// sketch of the whole stream.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerDied`] if a worker process died or exited
    /// uncleanly, or the transport / codec / merge failure.  Remaining
    /// workers are killed on the error path (no orphans).
    pub fn finish(mut self) -> Result<Box<U::Shard>, ClusterError> {
        self.flush();
        if let Some((worker, fault)) = self.fault {
            return Err(fault.to_error(worker));
        }
        // Fan the Finish requests out to every worker before collecting any
        // shard (as `snapshot` does), so the workers drain their links,
        // serialize and wind down concurrently: shutdown latency is the
        // slowest worker's, not the sum.
        for index in 0..self.workers.len() {
            let conn = &mut self.workers[index];
            conn.send(&Frame::Finish)
                .map_err(|e| wire_fault(index, e))?;
            // Half-closing the link is the belt to the Finish suspenders: a
            // worker that somehow missed the frame still sees EOF and winds
            // the session down.
            conn.close_send();
        }
        let mut merged: Option<Box<U::Shard>> = None;
        for index in 0..self.workers.len() {
            let conn = &mut self.workers[index];
            let bytes = read_shard(conn.as_mut(), index)?;
            match conn.confirm_finished() {
                Ok(true) => {}
                Ok(false) => return Err(ClusterError::WorkerDied { worker: index }),
                Err(e) => return Err(wire_fault(index, WireError::Io(e))),
            }
            let shard =
                U::shard_from_bytes(&self.spec, &bytes).map_err(|message| ClusterError::Frame {
                    worker: index,
                    message,
                })?;
            match &mut merged {
                None => merged = Some(shard),
                Some(into) => U::merge(into.as_mut(), shard.as_ref())?,
            }
        }
        Ok(merged.expect("cluster always has at least one worker"))
    }
}

// Dropping a `ClusterAggregator` drops its worker links; each transport's
// connection reaps its own resources (`PipeConnection` kills and waits on
// the child, sockets just close), so an abandoned — or failed — aggregator
// leaves no orphan processes behind.

/// Best-effort batch hand-off: a failed link marks the worker faulted (dead
/// or timed out), to be surfaced by the next report — mirroring the
/// in-process engine's `poisoned` bookkeeping.
fn send_batch<U: ClusterUpdate>(
    workers: &mut [Box<dyn WorkerConnection>],
    fault: &mut Option<(usize, WorkerFault)>,
    worker: usize,
    batch: Vec<U>,
) {
    // Once any link has faulted the run can only end in that error, so
    // stop shipping batches: on TCP each further flush to a stalled peer
    // would block for a full io_timeout, turning one bounded failure into
    // a stall proportional to the remaining stream length.
    if fault.is_some() {
        return;
    }
    let frame = Frame::Batch(U::payload(batch));
    if let Err(e) = workers[worker].send(&frame) {
        let error = wire_fault(worker, e);
        fault.get_or_insert((worker, WorkerFault::from_error(&error)));
    }
}

/// Reads the `Shard` reply a `Snapshot`/`Finish` request promises.
fn read_shard(conn: &mut dyn WorkerConnection, index: usize) -> Result<Vec<u8>, ClusterError> {
    match conn.recv() {
        Ok(Some(Frame::Shard(bytes))) => Ok(bytes),
        Ok(Some(Frame::Err(message))) => Err(ClusterError::WorkerReported {
            worker: index,
            message,
        }),
        Ok(Some(other)) => Err(ClusterError::Protocol {
            worker: index,
            expected: "Shard",
            got: other.kind().to_string(),
        }),
        Ok(None) | Err(WireError::Truncated) => Err(ClusterError::WorkerDied { worker: index }),
        Err(e) => Err(wire_fault(index, e)),
    }
}
