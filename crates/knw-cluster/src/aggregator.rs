//! The aggregator side: spawns N worker processes, streams batches to them
//! over the frame protocol using the *same* routing stage as the in-process
//! engine ([`knw_engine::ShardBatcher`]), and merges their serialized
//! shards into one sketch.
//!
//! ```text
//!        ingest / ingest_batch  (U = u64 or (item, ±delta))
//!                     │
//!          ┌──────────▼──────────┐   optional pre-coalescing
//!          │  ShardBatcher       │   (per-item delta sums, L0 only)
//!          │  RoundRobin/HashAff │
//!          └──────────┬──────────┘
//!     Batch frames    │  (length-prefixed serde codec, stdin pipes)
//!      ┌──────────┬───┴──────┬──────────────┐
//! ┌────▼───┐ ┌────▼───┐ ┌────▼───┐    ┌────▼───┐
//! │worker 0│ │worker 1│ │worker 2│  … │worker N│   child processes,
//! │ sketch │ │ sketch │ │ sketch │    │ sketch │   one shard each
//! └────┬───┘ └────┬───┘ └────┬───┘    └────┬───┘
//!      └──────────┴─────┬────┴──────────────┘
//!       Shard{bytes}    │  (stdout pipes)
//!                deserialize + merge_dyn fold
//!                       │
//!                  estimate()
//! ```
//!
//! Because the batcher, policies and batch sizes are shared with
//! [`ShardRouter`](knw_engine::ShardRouter) / `ShardedEngine`, a cluster
//! run's shard contents are identical to an in-process run's — and since
//! every sketch in the workspace merges exactly, the final estimate is
//! bit-identical to a single-process, single-sketch run over the same
//! stream.

use crate::error::ClusterError;
use crate::frame::{
    read_frame, write_frame, BatchPayload, Frame, HelloConfig, SketchSpec, StreamMode, WireError,
};
use crate::spec::{build_f0, build_l0, f0_shard_from_bytes, l0_shard_from_bytes};
use crate::spec::{WireF0Sketch, WireL0Sketch};
use knw_core::{DynMergeableCardinalityEstimator, DynMergeableTurnstileEstimator, SketchError};
use knw_engine::{EngineConfig, Routable, ShardBatcher};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

/// An update type the cluster can stream: ties the routing-stage contract
/// ([`Routable`]) to the wire format (payload framing, shard construction,
/// deserialization and merging) for its stream model.
///
/// Implemented for `u64` (insert-only F0 workers) and `(u64, i64)`
/// (turnstile L0 workers); never implement it manually.
pub trait ClusterUpdate: Routable {
    /// The erased shard-sketch type of this stream model.
    type Shard: ?Sized;

    /// The stream model tag sent in the `Hello` frame.
    fn mode() -> StreamMode;

    /// Wraps a routed batch into the wire payload.
    fn payload(batch: Vec<Self>) -> BatchPayload;

    /// Builds a fresh local sketch for `spec` (used to validate the spec
    /// before spawning, and by single-process comparisons).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] for names outside the zoo.
    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError>;

    /// Decodes a worker's shard bytes; the error is the codec's message.
    ///
    /// # Errors
    ///
    /// The codec rejection, as a message the caller attributes to a worker.
    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String>;

    /// Applies buffered (not yet dispatched) updates to a merged snapshot.
    fn apply(shard: &mut Self::Shard, batch: &[Self]);

    /// Merges `other` into `into` (exact for every workspace sketch).
    ///
    /// # Errors
    ///
    /// The sketch-level incompatibility, if the shards disagree on
    /// configuration or seeds.
    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError>;

    /// The shard's current estimate.
    fn estimate(shard: &Self::Shard) -> f64;
}

impl ClusterUpdate for u64 {
    type Shard = dyn WireF0Sketch;

    fn mode() -> StreamMode {
        StreamMode::F0
    }

    fn payload(batch: Vec<u64>) -> BatchPayload {
        BatchPayload::Items(batch)
    }

    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError> {
        build_f0(spec)
    }

    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String> {
        f0_shard_from_bytes(spec, bytes)
    }

    fn apply(shard: &mut Self::Shard, batch: &[u64]) {
        shard.insert_batch(batch);
    }

    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError> {
        into.merge_dyn(other as &dyn DynMergeableCardinalityEstimator)
    }

    fn estimate(shard: &Self::Shard) -> f64 {
        shard.estimate()
    }
}

impl ClusterUpdate for (u64, i64) {
    type Shard = dyn WireL0Sketch;

    fn mode() -> StreamMode {
        StreamMode::L0
    }

    fn payload(batch: Vec<(u64, i64)>) -> BatchPayload {
        BatchPayload::Updates(batch)
    }

    fn build(spec: &SketchSpec) -> Result<Box<Self::Shard>, ClusterError> {
        build_l0(spec)
    }

    fn shard_from_bytes(spec: &SketchSpec, bytes: &[u8]) -> Result<Box<Self::Shard>, String> {
        l0_shard_from_bytes(spec, bytes)
    }

    fn apply(shard: &mut Self::Shard, batch: &[(u64, i64)]) {
        shard.update_batch(batch);
    }

    fn merge(into: &mut Self::Shard, other: &Self::Shard) -> Result<(), SketchError> {
        into.merge_dyn(other as &dyn DynMergeableTurnstileEstimator)
    }

    fn estimate(shard: &Self::Shard) -> f64 {
        shard.estimate()
    }
}

/// Cluster sizing: the shared engine knobs (shard count = worker count,
/// batch size, routing policy, pre-coalescing) plus the path of the worker
/// executable to spawn.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Routing knobs, shared verbatim with the in-process engine.
    pub engine: EngineConfig,
    /// Path to the `knw-worker` executable.
    pub worker_exe: PathBuf,
}

impl ClusterConfig {
    /// Creates a cluster configuration for `workers` worker processes using
    /// the given worker executable.
    #[must_use]
    pub fn new(workers: usize, worker_exe: impl Into<PathBuf>) -> Self {
        Self {
            engine: EngineConfig::new(workers),
            worker_exe: worker_exe.into(),
        }
    }

    /// Replaces the engine knobs (batch size, routing, pre-coalescing),
    /// keeping the worker count consistent with `engine.shards`.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Locates the sibling `knw-worker` binary next to the current executable
/// (handling cargo's `target/<profile>/deps/` layout for tests and
/// benches).  Returns `None` when no such file exists — e.g. when only the
/// library was built.
#[must_use]
pub fn sibling_worker_exe() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.pop();
    }
    let candidate = dir.join("knw-worker");
    candidate.is_file().then_some(candidate)
}

struct WorkerHandle {
    child: Child,
    /// `None` once the pipe was closed (at `Finish`).
    stdin: Option<BufWriter<ChildStdin>>,
    stdout: BufReader<ChildStdout>,
}

/// The multi-process aggregation engine: the cross-process sibling of
/// [`ShardedEngine`](knw_engine::ShardedEngine), with worker *processes*
/// instead of worker threads and serialized shards instead of cloned ones.
///
/// A worker crash mirrors the in-process
/// [`SketchError::ShardPanicked`](knw_core::SketchError::ShardPanicked)
/// philosophy: the lost shard's updates cannot be recovered, so reporting
/// refuses with [`ClusterError::WorkerDied`] instead of silently
/// undercounting.
pub struct ClusterAggregator<U: ClusterUpdate> {
    spec: SketchSpec,
    workers: Vec<WorkerHandle>,
    batcher: ShardBatcher<U>,
    precoalesce: bool,
    updates: u64,
    /// First worker whose pipe broke (its process died).
    dead: Option<usize>,
}

/// The insert-only (F0) front of [`ClusterAggregator`].
pub type F0ClusterAggregator = ClusterAggregator<u64>;

/// The turnstile (L0) front of [`ClusterAggregator`].
pub type L0ClusterAggregator = ClusterAggregator<(u64, i64)>;

impl<U: ClusterUpdate> ClusterAggregator<U> {
    /// Spawns `config.engine.shards` worker processes and performs the
    /// `Hello` handshake.  The spec's stream model is forced to `U`'s.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownEstimator`] if the spec names a sketch
    /// outside the zoo (validated *before* spawning anything), or an
    /// [`ClusterError::Io`] if a worker cannot be spawned or greeted.
    pub fn spawn(config: &ClusterConfig, spec: &SketchSpec) -> Result<Self, ClusterError> {
        let mut spec = spec.clone();
        spec.mode = U::mode();
        // Fail fast on bad specs, before any process exists.
        let _ = U::build(&spec)?;

        let engine = config.engine.normalized();
        let mut workers = Vec::with_capacity(engine.shards);
        for index in 0..engine.shards {
            let mut handle = spawn_worker(&config.worker_exe, index)?;
            let hello = Frame::Hello(HelloConfig {
                worker_index: index as u64,
                spec: spec.clone(),
            });
            write_to(&mut handle, index, &hello)?;
            workers.push(handle);
        }
        Ok(Self {
            spec,
            workers,
            batcher: ShardBatcher::new(engine.routing, engine.shards, engine.batch_size),
            precoalesce: engine.precoalesce && U::coalescible(),
            updates: 0,
            dead: None,
        })
    }

    /// The spec every worker was configured with.
    #[must_use]
    pub fn spec(&self) -> &SketchSpec {
        &self.spec
    }

    /// Number of worker processes.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Total updates routed so far (raw, before any pre-coalescing).
    #[must_use]
    pub fn items_ingested(&self) -> u64 {
        self.updates
    }

    /// Routes one update (buffered; shipped once a batch fills up).
    pub fn ingest(&mut self, update: U) {
        self.updates += 1;
        let (workers, dead) = (&mut self.workers, &mut self.dead);
        self.batcher.push(update, &mut |worker, batch| {
            send_batch::<U>(workers, dead, worker, batch);
        });
    }

    /// Routes a slice of updates.  With pre-coalescing enabled, turnstile
    /// batches are first collapsed to per-item delta sums so workers
    /// receive fewer, pre-summed updates — less wire traffic, same final
    /// state for every linear sketch.
    pub fn ingest_batch(&mut self, updates: &[U]) {
        self.updates += updates.len() as u64;
        let (workers, dead) = (&mut self.workers, &mut self.dead);
        let mut dispatch = |worker: usize, batch: Vec<U>| {
            send_batch::<U>(workers, dead, worker, batch);
        };
        if self.precoalesce {
            let coalesced = U::coalesce_batch(updates);
            self.batcher.extend_from_slice(&coalesced, &mut dispatch);
        } else {
            self.batcher.extend_from_slice(updates, &mut dispatch);
        }
    }

    /// Ships every (possibly partial) pending batch to its worker.
    pub fn flush(&mut self) {
        let (workers, dead) = (&mut self.workers, &mut self.dead);
        self.batcher.flush(&mut |worker, batch| {
            send_batch::<U>(workers, dead, worker, batch);
        });
    }

    /// Kills one worker process — a fault-injection / operations hook
    /// (e.g. evicting a wedged worker).  The next report will surface
    /// [`ClusterError::WorkerDied`] for it.
    ///
    /// # Errors
    ///
    /// The underlying `kill(2)` failure, if any.
    pub fn kill_worker(&mut self, worker: usize) -> std::io::Result<()> {
        self.workers[worker].child.kill()
    }

    /// Requests a shard snapshot from every worker and merges them (plus
    /// any locally buffered updates) into one sketch summarizing every
    /// update ingested so far.  The cluster keeps running — this is the
    /// paper's midstream "reporting".
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerDied`] if a worker process died (its updates
    /// are unrecoverable), or the transport / codec / merge failure.
    pub fn snapshot(&mut self) -> Result<Box<U::Shard>, ClusterError> {
        if let Some(worker) = self.dead {
            return Err(ClusterError::WorkerDied { worker });
        }
        // Fan the snapshot requests out before collecting any reply, so the
        // workers drain their pipes and serialize concurrently.
        for index in 0..self.workers.len() {
            let handle = &mut self.workers[index];
            if let Err(e) = write_to(handle, index, &Frame::Snapshot) {
                self.dead.get_or_insert(index);
                return Err(e);
            }
        }
        let mut merged: Option<Box<U::Shard>> = None;
        for index in 0..self.workers.len() {
            let bytes = match read_shard(&mut self.workers[index], index) {
                Ok(bytes) => bytes,
                Err(e) => {
                    if matches!(e, ClusterError::WorkerDied { .. }) {
                        self.dead.get_or_insert(index);
                    }
                    return Err(e);
                }
            };
            let shard =
                U::shard_from_bytes(&self.spec, &bytes).map_err(|message| ClusterError::Frame {
                    worker: index,
                    message,
                })?;
            match &mut merged {
                None => merged = Some(shard),
                Some(into) => U::merge(into.as_mut(), shard.as_ref())?,
            }
        }
        let mut merged = merged.expect("cluster always has at least one worker");
        // Fold in the locally buffered (not yet shipped) updates, exactly
        // like the in-process router's midstream `merged()`.
        self.batcher.for_each_pending(|batch| {
            U::apply(merged.as_mut(), batch);
        });
        Ok(merged)
    }

    /// Snapshots and reports the current estimate.
    ///
    /// # Errors
    ///
    /// Same as [`snapshot`](Self::snapshot).
    pub fn estimate(&mut self) -> Result<f64, ClusterError> {
        Ok(U::estimate(self.snapshot()?.as_ref()))
    }

    /// Ships all pending batches, sends `Finish`, collects every worker's
    /// final shard, waits for the processes to exit, and returns the merged
    /// sketch of the whole stream.
    ///
    /// # Errors
    ///
    /// [`ClusterError::WorkerDied`] if a worker process died or exited
    /// uncleanly, or the transport / codec / merge failure.  Remaining
    /// workers are killed on the error path (no orphans).
    pub fn finish(mut self) -> Result<Box<U::Shard>, ClusterError> {
        self.flush();
        if let Some(worker) = self.dead {
            return Err(ClusterError::WorkerDied { worker });
        }
        // Fan the Finish requests out to every worker before collecting any
        // shard (as `snapshot` does), so the workers drain their pipes,
        // serialize and exit concurrently: shutdown latency is the slowest
        // worker's, not the sum.
        for index in 0..self.workers.len() {
            let handle = &mut self.workers[index];
            write_to(handle, index, &Frame::Finish)?;
            // Closing stdin is the belt to the Finish suspenders: a worker
            // that somehow missed the frame still sees EOF and exits.
            drop(handle.stdin.take());
        }
        let mut merged: Option<Box<U::Shard>> = None;
        for index in 0..self.workers.len() {
            let handle = &mut self.workers[index];
            let bytes = read_shard(handle, index)?;
            let status = handle
                .child
                .wait()
                .map_err(|e| ClusterError::io(index, e))?;
            if !status.success() {
                return Err(ClusterError::WorkerDied { worker: index });
            }
            let shard =
                U::shard_from_bytes(&self.spec, &bytes).map_err(|message| ClusterError::Frame {
                    worker: index,
                    message,
                })?;
            match &mut merged {
                None => merged = Some(shard),
                Some(into) => U::merge(into.as_mut(), shard.as_ref())?,
            }
        }
        self.workers.clear(); // all waited; Drop has nothing left to kill
        Ok(merged.expect("cluster always has at least one worker"))
    }
}

impl<U: ClusterUpdate> Drop for ClusterAggregator<U> {
    /// Reaps every still-running worker so an abandoned (or failed)
    /// aggregator leaves no orphan processes behind.
    fn drop(&mut self) {
        for handle in &mut self.workers {
            drop(handle.stdin.take());
            let _ = handle.child.kill();
            let _ = handle.child.wait();
        }
    }
}

fn spawn_worker(exe: &Path, index: usize) -> Result<WorkerHandle, ClusterError> {
    let mut child = Command::new(exe)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| ClusterError::io(index, e))?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let stdout = child.stdout.take().expect("stdout was piped");
    Ok(WorkerHandle {
        child,
        stdin: Some(BufWriter::new(stdin)),
        stdout: BufReader::new(stdout),
    })
}

/// Writes one frame to a worker and flushes, mapping transport failures to
/// worker-attributed errors.
fn write_to(handle: &mut WorkerHandle, index: usize, frame: &Frame) -> Result<(), ClusterError> {
    let Some(stdin) = handle.stdin.as_mut() else {
        return Err(ClusterError::WorkerDied { worker: index });
    };
    let io_dead = |e: std::io::Error| {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            ClusterError::WorkerDied { worker: index }
        } else {
            ClusterError::io(index, e)
        }
    };
    match write_frame(stdin, frame) {
        Ok(()) => {}
        Err(WireError::Io(e)) => return Err(io_dead(e)),
        Err(e) => {
            return Err(ClusterError::Frame {
                worker: index,
                message: e.to_string(),
            })
        }
    }
    stdin.flush().map_err(io_dead)
}

/// Best-effort batch hand-off: a broken pipe marks the worker dead (its
/// process exited), to be surfaced by the next report — mirroring the
/// in-process engine's `poisoned` bookkeeping.
fn send_batch<U: ClusterUpdate>(
    workers: &mut [WorkerHandle],
    dead: &mut Option<usize>,
    worker: usize,
    batch: Vec<U>,
) {
    let frame = Frame::Batch(U::payload(batch));
    if write_to(&mut workers[worker], worker, &frame).is_err() {
        dead.get_or_insert(worker);
    }
}

/// Reads the `Shard` reply a `Snapshot`/`Finish` request promises.
fn read_shard(handle: &mut WorkerHandle, index: usize) -> Result<Vec<u8>, ClusterError> {
    match read_frame(&mut handle.stdout) {
        Ok(Some(Frame::Shard(bytes))) => Ok(bytes),
        Ok(Some(Frame::Err(message))) => Err(ClusterError::WorkerReported {
            worker: index,
            message,
        }),
        Ok(Some(other)) => Err(ClusterError::Protocol {
            worker: index,
            expected: "Shard",
            got: other.kind().to_string(),
        }),
        Ok(None) | Err(WireError::Truncated) => Err(ClusterError::WorkerDied { worker: index }),
        Err(WireError::Io(e)) => Err(ClusterError::io(index, e)),
        Err(e) => Err(ClusterError::Frame {
            worker: index,
            message: e.to_string(),
        }),
    }
}
