//! Plain-text metrics exposition: minimal HTTP/1.0-style plumbing around
//! [`MetricsRegistry::render`](knw_metrics::MetricsRegistry::render), shared
//! by the two scrape surfaces:
//!
//! * the nonblocking `--serve` path registers a scrape listener on the
//!   session epoll loop (see [`session`](crate::session)) and uses
//!   [`http_response`] / [`request_complete`] to answer each scrape
//!   without ever blocking the loop;
//! * the blocking pipe/TCP aggregation modes (`knw-aggregate --metrics
//!   <addr>` without `--serve`) run a [`MetricsServer`] — a background
//!   accept thread, one scrape per short-lived connection, patterned after
//!   the [`WorkerRegistry`](crate::WorkerRegistry) collector.
//!
//! The "HTTP" here is deliberately tiny (the offline-shim discipline: no
//! hyper, no HTTP crate): read until the header terminator, ignore the
//! request line entirely, answer `200 OK` with the registry rendered in
//! Prometheus text format 0.0.4, close.  Every scraper — `curl`,
//! Prometheus, a test harness — speaks this much.

use knw_metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The exposition content type (Prometheus text format 0.0.4).
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Caps how many request bytes a scrape connection may send before the
/// header terminator; a peer streaming garbage is cut off, not buffered.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Wraps an exposition body in a complete `HTTP/1.1 200 OK` response
/// (content type, length, `Connection: close`), ready to write verbatim.
#[must_use]
pub fn http_response(body: &str) -> Vec<u8> {
    let mut response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    response.extend_from_slice(body.as_bytes());
    response
}

/// Whether `buf` holds a complete scrape request: everything up to the
/// header terminator (`\r\n\r\n`, or a bare `\n\n` from hand-typed
/// clients).  The request contents are never interpreted — any complete
/// request is answered with the full exposition.
#[must_use]
pub fn request_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// Renders `registry` and wraps it for the wire — the one-call scrape
/// answer both serving paths share.
#[must_use]
pub fn scrape_response(registry: &MetricsRegistry) -> Vec<u8> {
    http_response(&registry.render())
}

/// A standalone scrape listener for the *blocking* aggregation modes: a
/// background accept thread answering one scrape per connection from the
/// process-wide registry.  (The nonblocking `--serve` path multiplexes
/// scrapes on its epoll loop instead; see
/// [`SessionServeOptions::with_metrics_listener`](crate::SessionServeOptions::with_metrics_listener).)
///
/// Dropping the server stops the thread (same wake-by-connect pattern as
/// the [`WorkerRegistry`](crate::WorkerRegistry) collector).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (`"127.0.0.1:0"` picks a free port; see
    /// [`local_addr`](Self::local_addr)) and starts answering scrapes of
    /// the process-wide registry.
    ///
    /// # Errors
    ///
    /// The bind failure.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let Ok((stream, _peer)) = listener.accept() else {
                        // Transient accept pressure just skips a scrape;
                        // the next scraper retries.  No backoff loop — a
                        // metrics endpoint is never load-bearing.
                        continue;
                    };
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = serve_one_scrape(stream, knw_metrics::global());
                }
            })
        };
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address the server listens on — what a scraper dials.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so the thread observes the stop flag (a
        // wildcard bind is not connectable everywhere; dial loopback).
        let wake = if self.addr.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if self.addr.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            SocketAddr::new(loopback, self.addr.port())
        } else {
            self.addr
        };
        let woke = TcpStream::connect_timeout(&wake, Duration::from_secs(1)).is_ok();
        if let Some(thread) = self.thread.take() {
            if woke {
                let _ = thread.join();
            }
            // Otherwise the thread may still sit in accept(2); it ends with
            // the process rather than deadlocking the dropping thread.
        }
    }
}

/// Answers one blocking scrape: read to the header terminator (bounded in
/// bytes and time), write the full exposition, close.
fn serve_one_scrape(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut request = Vec::new();
    let mut chunk = [0u8; 1024];
    while !request_complete(&request) && request.len() < MAX_REQUEST_BYTES {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&chunk[..n]);
    }
    stream.write_all(&scrape_response(registry))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_carry_the_exposition_headers_and_exact_length() {
        let body = "knw_test_total 1\n";
        let response = http_response(body);
        let text = String::from_utf8(response).expect("ASCII response");
        let (head, tail) = text.split_once("\r\n\r\n").expect("header terminator");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert!(head.contains("Connection: close"));
        assert_eq!(tail, body);
    }

    #[test]
    fn request_completion_waits_for_the_header_terminator() {
        assert!(!request_complete(b""));
        assert!(!request_complete(b"GET /metrics HTTP/1.1\r\nHost: x\r\n"));
        assert!(request_complete(
            b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
        ));
        assert!(request_complete(b"GET /metrics\n\n"), "bare-LF clients");
    }

    #[test]
    fn a_real_scraper_gets_the_registry_over_tcp() {
        // The server scrapes the process-wide registry; plant a marker
        // counter so the assertion is independent of whatever other tests
        // registered.
        knw_metrics::global()
            .counter("knw_expo_selftest_total", &[])
            .add(3);
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("# TYPE knw_expo_selftest_total counter"));
        assert!(response.contains("knw_expo_selftest_total 3"));
    }
}
