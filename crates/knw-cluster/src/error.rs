//! Error types of the distributed aggregation layer.

use knw_core::SketchError;
use std::fmt;

/// Errors arising on the aggregator side of a cluster run: transport
/// failures, protocol violations, worker crashes, and sketch-level merge
/// incompatibilities.
///
/// The variants mirror the in-process engine's failure philosophy
/// ([`SketchError::ShardPanicked`]): a lost worker means the merged estimate
/// would silently undercount, so reporting refuses with a typed error
/// naming the worker instead of producing a number.
#[derive(Debug)]
pub enum ClusterError {
    /// An I/O error on a worker pipe (spawn failure, broken pipe, …).
    Io {
        /// Index of the worker whose pipe failed (`None` for spawn-time
        /// failures not attributable to a worker).
        worker: Option<usize>,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A frame could not be decoded: truncated length prefix, oversized
    /// declared length, or a payload the codec rejects.
    Frame {
        /// Index of the worker the malformed frame came from.
        worker: usize,
        /// Codec-level description of the failure.
        message: String,
    },
    /// A worker process died (its stream ended, or it exited nonzero)
    /// before delivering its shard; the shard's updates are lost, so no
    /// trustworthy merged estimate can be produced.
    WorkerDied {
        /// Index of the dead worker.
        worker: usize,
    },
    /// A worker's socket could not be connected: refused, unreachable,
    /// unresolvable, or the connect attempt timed out.  Raised before any
    /// frame flows — the aggregation never starts on a partial cluster.
    ConnectFailed {
        /// Index of the unreachable worker.
        worker: usize,
        /// The address that failed to connect.
        addr: String,
        /// The underlying connect failure.
        source: std::io::Error,
    },
    /// A worker link timed out mid-conversation: the peer is half-open or
    /// stalled (accepted the connection but stopped reading or replying).
    /// The transport's read/write timeouts bound how long the aggregator
    /// waits before raising this.
    Timeout {
        /// Index of the stalled worker.
        worker: usize,
    },
    /// A worker link's read timed out *inside* a frame: part of the length
    /// prefix or payload was already consumed when the deadline fired, so
    /// the byte stream is desynchronized — resuming reads on the same
    /// connection would misparse leftover frame bytes as a fresh length
    /// prefix.  Unlike [`ClusterError::Timeout`] (a between-frames stall,
    /// recoverable in place), this link is only recoverable by re-dialing
    /// and replaying the journal on a fresh connection.
    Desynced {
        /// Index of the worker whose stream desynchronized.
        worker: usize,
    },
    /// A worker answered with a frame the protocol does not allow in the
    /// current state (e.g. a `Batch` where a `Shard` was expected).
    Protocol {
        /// Index of the offending worker.
        worker: usize,
        /// The frame kind the aggregator was waiting for.
        expected: &'static str,
        /// A rendering of what arrived instead.
        got: String,
    },
    /// A worker reported an error of its own (an `Err` frame): unknown
    /// estimator, mode mismatch, or a local codec failure.
    WorkerReported {
        /// Index of the reporting worker.
        worker: usize,
        /// The worker's error message, verbatim.
        message: String,
    },
    /// Reconnect-and-replay recovery gave up on a worker: every reconnect
    /// attempt the [`RecoveryPolicy`](crate::RecoveryPolicy) allowed failed
    /// (the static address stayed unreachable and no registered replacement
    /// worked), so the shard's updates cannot be reconstructed anywhere and
    /// no trustworthy merged estimate can be produced.
    RecoveryExhausted {
        /// Index of the unrecoverable worker.
        worker: usize,
        /// How many reconnect attempts were made before giving up.
        attempts: usize,
        /// A rendering of the last attempt's failure.
        last: String,
    },
    /// A worker's replay journal overflowed its configured bound
    /// ([`RecoveryPolicy::journal_cap`](crate::RecoveryPolicy)) before the
    /// fault: the batches needed to rebuild the shard were discarded to
    /// honour the memory bound, so the worker cannot be replayed.  Take
    /// snapshots more often (each acknowledged snapshot truncates the
    /// journal to a checkpoint) or raise the cap.
    JournalOverflow {
        /// Index of the worker whose journal overflowed.
        worker: usize,
        /// The configured per-shard journal bound, in updates.
        cap: usize,
    },
    /// The worker pool could not cover the requested fleet size: too few
    /// registered spares passed their health probe.  Raised by
    /// `ClusterAggregator::from_pool` before any aggregation starts, and by
    /// `scale_to` when a grow cannot draw enough live workers — the fleet
    /// is never silently smaller than asked for.
    PoolExhausted {
        /// How many live workers the caller asked for.
        needed: usize,
        /// How many the pool could actually provide.
        live: usize,
    },
    /// `scale_to` was called on an aggregator that cannot reshard exactly:
    /// journaling is off (no [`RecoveryPolicy`](crate::RecoveryPolicy), so
    /// there is nothing to replay onto a split shard), or a prior fault has
    /// already poisoned the run.
    RescaleUnsupported {
        /// Why the aggregator refused to reshard.
        reason: &'static str,
    },
    /// The requested estimator name is not in the wire-format zoo.
    UnknownEstimator {
        /// The name that failed to resolve.
        name: String,
    },
    /// Merging the collected shards failed (mismatched configuration or
    /// seeds — the cluster-level equivalent of a misconfigured factory).
    Sketch(SketchError),
}

impl ClusterError {
    /// Wraps an I/O error attributable to a specific worker.
    #[must_use]
    pub fn io(worker: usize, source: std::io::Error) -> Self {
        ClusterError::Io {
            worker: Some(worker),
            source,
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io { worker, source } => match worker {
                Some(w) => write!(f, "i/o error on worker {w}: {source}"),
                None => write!(f, "i/o error: {source}"),
            },
            ClusterError::Frame { worker, message } => {
                write!(f, "malformed frame from worker {worker}: {message}")
            }
            ClusterError::WorkerDied { worker } => {
                write!(
                    f,
                    "worker process {worker} died before delivering its shard; \
                     its updates are lost"
                )
            }
            ClusterError::ConnectFailed {
                worker,
                addr,
                source,
            } => {
                write!(
                    f,
                    "connecting to worker {worker} at {addr} failed: {source}"
                )
            }
            ClusterError::Timeout { worker } => {
                write!(
                    f,
                    "worker {worker} stalled: the link timed out before it \
                     answered; its shard cannot be trusted"
                )
            }
            ClusterError::Desynced { worker } => {
                write!(
                    f,
                    "worker {worker}'s link timed out mid-frame and is \
                     desynchronized; it cannot be resumed in place, only \
                     re-dialed and replayed"
                )
            }
            ClusterError::Protocol {
                worker,
                expected,
                got,
            } => {
                write!(
                    f,
                    "protocol violation from worker {worker}: expected {expected}, got {got}"
                )
            }
            ClusterError::WorkerReported { worker, message } => {
                write!(f, "worker {worker} reported an error: {message}")
            }
            ClusterError::RecoveryExhausted {
                worker,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "worker {worker} could not be recovered after {attempts} \
                     reconnect attempt(s); last failure: {last}"
                )
            }
            ClusterError::JournalOverflow { worker, cap } => {
                write!(
                    f,
                    "worker {worker}'s replay journal overflowed its \
                     {cap}-update bound before the fault; the shard cannot \
                     be replayed (snapshot more often, or raise the cap)"
                )
            }
            ClusterError::PoolExhausted { needed, live } => {
                write!(
                    f,
                    "the worker pool cannot cover the requested fleet: \
                     {needed} live worker(s) needed, {live} available after \
                     health probing"
                )
            }
            ClusterError::RescaleUnsupported { reason } => {
                write!(f, "the aggregation cannot be resharded: {reason}")
            }
            ClusterError::UnknownEstimator { name } => {
                write!(
                    f,
                    "spec field `estimator`: {name:?} is not in the wire-format zoo"
                )
            }
            ClusterError::Sketch(e) => write!(f, "shard merge failed: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io { source, .. } | ClusterError::ConnectFailed { source, .. } => {
                Some(source)
            }
            ClusterError::Sketch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SketchError> for ClusterError {
    fn from(e: SketchError) -> Self {
        ClusterError::Sketch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_worker() {
        let died = ClusterError::WorkerDied { worker: 2 };
        assert!(died.to_string().contains("worker process 2"));
        let proto = ClusterError::Protocol {
            worker: 1,
            expected: "Shard",
            got: "Batch".into(),
        };
        assert!(proto.to_string().contains("expected Shard"));
        let io = ClusterError::io(3, std::io::Error::other("pipe gone"));
        assert!(io.to_string().contains("worker 3"));
        assert!(std::error::Error::source(&io).is_some());
        let sketch = ClusterError::from(SketchError::SeedMismatch);
        assert!(sketch.to_string().contains("seeds"));
        let refused = ClusterError::ConnectFailed {
            worker: 4,
            addr: "10.0.0.9:7000".into(),
            source: std::io::ErrorKind::ConnectionRefused.into(),
        };
        assert!(refused.to_string().contains("worker 4"));
        assert!(refused.to_string().contains("10.0.0.9:7000"));
        assert!(std::error::Error::source(&refused).is_some());
        let stalled = ClusterError::Timeout { worker: 1 };
        assert!(stalled.to_string().contains("worker 1"));
        assert!(stalled.to_string().contains("timed out"));
        let desynced = ClusterError::Desynced { worker: 6 };
        assert!(desynced.to_string().contains("worker 6"));
        assert!(desynced.to_string().contains("mid-frame"));
        let exhausted = ClusterError::RecoveryExhausted {
            worker: 5,
            attempts: 3,
            last: "connection refused".into(),
        };
        assert!(exhausted.to_string().contains("worker 5"));
        assert!(exhausted.to_string().contains("3 reconnect"));
        assert!(exhausted.to_string().contains("connection refused"));
        let overflow = ClusterError::JournalOverflow { worker: 2, cap: 64 };
        assert!(overflow.to_string().contains("worker 2"));
        assert!(overflow.to_string().contains("64-update"));
        let exhausted_pool = ClusterError::PoolExhausted { needed: 4, live: 2 };
        assert!(exhausted_pool.to_string().contains("4 live worker(s)"));
        assert!(exhausted_pool.to_string().contains("2 available"));
        let unsupported = ClusterError::RescaleUnsupported {
            reason: "journaling is off",
        };
        assert!(unsupported.to_string().contains("journaling is off"));
    }

    #[test]
    fn unknown_estimator_names_the_spec_field() {
        let unknown = ClusterError::UnknownEstimator {
            name: "bogus".into(),
        };
        let message = unknown.to_string();
        assert!(message.contains("`estimator`"), "{message}");
        assert!(message.contains("bogus"), "{message}");
    }
}
