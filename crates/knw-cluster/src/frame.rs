//! The length-prefixed frame protocol spoken between the aggregator and its
//! worker processes.
//!
//! # Wire format
//!
//! Every frame is a `u32` little-endian length prefix followed by exactly
//! that many payload bytes; the payload is the [`Frame`] enum encoded with
//! the workspace's serde binary codec (a `u32` variant index followed by
//! the variant's fields, see `dev-shims/serde`).  The format is
//! deliberately boring: framing survives any byte content, a reader can
//! skip frames it does not understand, and the golden-bytes tests below pin
//! the encoding so the two sides of the pipe (which are separate binaries)
//! cannot drift silently.
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────────────┐
//! │ len: u32LE │ payload: serde(Frame), exactly `len` bytes   │
//! └────────────┴──────────────────────────────────────────────┘
//! ```
//!
//! # Conversation
//!
//! ```text
//! aggregator → worker:  Hello{config}  (Batch{…})*  (Snapshot (…))*  Finish
//! worker → aggregator:                 Shard{bytes} per Snapshot/Finish,
//!                                      Err{message} on any failure
//! ```
//!
//! Decoding is strict and total: truncated input, oversized length
//! prefixes and codec rejections all surface as typed [`WireError`]s, never
//! panics — a crashed peer must not take the survivor down with it.

use std::fmt;
use std::io::{ErrorKind, Read, Write};

/// Hard ceiling on a frame's declared payload length: a corrupt or
/// adversarial length prefix must not translate into an unbounded
/// allocation.  256 MiB comfortably covers any sketch in the workspace
/// (sketches are *small* — that is the point of the paper).
pub const MAX_FRAME_LEN: usize = 256 << 20;

/// Which stream model a worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StreamMode {
    /// Insert-only F0 streams (`u64` items).
    F0,
    /// Turnstile L0 streams (`(u64, i64)` signed updates).
    L0,
}

/// Everything a worker needs to construct its shard sketch: the stream
/// model, the estimator's zoo name, and the accuracy / universe / seed
/// parameters every estimator in the zoo is built from.
///
/// All workers of a run receive the *same* spec — identical configuration
/// and seeds are what make the final merge exact, precisely as with the
/// in-process engine's factory contract.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SketchSpec {
    /// Stream model (selects the zoo the name is resolved in).
    pub mode: StreamMode,
    /// Estimator name as reported by `CardinalityEstimator::name` /
    /// `TurnstileEstimator::name` (e.g. `"knw-f0"`, `"hyperloglog"`).
    pub estimator: String,
    /// Relative accuracy target ε.
    pub epsilon: f64,
    /// Universe size `n`.
    pub universe: u64,
    /// Hash seed shared by every shard.
    pub seed: u64,
}

impl SketchSpec {
    /// Creates an F0 spec.
    #[must_use]
    pub fn f0(estimator: impl Into<String>, epsilon: f64, universe: u64, seed: u64) -> Self {
        Self {
            mode: StreamMode::F0,
            estimator: estimator.into(),
            epsilon,
            universe,
            seed,
        }
    }

    /// Creates an L0 spec.
    #[must_use]
    pub fn l0(estimator: impl Into<String>, epsilon: f64, universe: u64, seed: u64) -> Self {
        Self {
            mode: StreamMode::L0,
            estimator: estimator.into(),
            epsilon,
            universe,
            seed,
        }
    }
}

/// The handshake payload: the worker's index (for diagnostics) and the
/// sketch spec it must instantiate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HelloConfig {
    /// This worker's shard index in the cluster.
    pub worker_index: u64,
    /// The sketch every worker of the run builds.
    pub spec: SketchSpec,
}

/// A batch of stream updates, in the worker's stream model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BatchPayload {
    /// Insert-only items.
    Items(Vec<u64>),
    /// Signed turnstile updates.
    Updates(Vec<(u64, i64)>),
}

impl BatchPayload {
    /// Number of updates in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            BatchPayload::Items(v) => v.len(),
            BatchPayload::Updates(v) => v.len(),
        }
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One protocol message.  See the module docs for the conversation shape.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Frame {
    /// Aggregator → worker: handshake carrying the sketch spec.
    Hello(HelloConfig),
    /// Aggregator → worker: a batch of stream updates to ingest.
    Batch(BatchPayload),
    /// Aggregator → worker: request the current shard bytes (midstream
    /// reporting); the worker answers with [`Frame::Shard`] and keeps going.
    Snapshot,
    /// Aggregator → worker: finalize — answer with [`Frame::Shard`] and
    /// exit cleanly.
    Finish,
    /// Worker → aggregator: the serialized shard sketch.
    Shard(Vec<u8>),
    /// Worker → aggregator: a worker-side failure, in human-readable form.
    Err(String),
    /// Aggregator → worker: restore a checkpointed shard (the serialized
    /// bytes of a previously acknowledged snapshot).  Sent by the recovery
    /// path right after `Hello`, before any `Batch`, so a reconnected
    /// worker resumes from the checkpoint instead of replaying the whole
    /// stream; a `Restore` after any `Batch` is a protocol violation.
    Restore(Vec<u8>),
    /// Worker → registry: a listening worker announcing the address it
    /// serves on (the `knw-worker --register` handshake; see
    /// [`WorkerRegistry`](crate::recovery::WorkerRegistry)).
    Register(String),
    /// Worker → aggregator: the worker-side ingest counters for the
    /// session, sent immediately before the final [`Frame::Shard`] reply
    /// to [`Frame::Finish`] so the aggregator can fold per-worker health
    /// into its fleet-wide metrics.
    Stats(WorkerStats),
}

impl Frame {
    /// A short name for protocol-violation diagnostics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello(_) => "Hello",
            Frame::Batch(_) => "Batch",
            Frame::Snapshot => "Snapshot",
            Frame::Finish => "Finish",
            Frame::Shard(_) => "Shard",
            Frame::Err(_) => "Err",
            Frame::Restore(_) => "Restore",
            Frame::Register(_) => "Register",
            Frame::Stats(_) => "Stats",
        }
    }
}

/// A worker session's ingest counters, exported over the wire in a
/// [`Frame::Stats`] frame.  All fields count the session (one aggregator
/// link), not the process: a recovered-and-replayed worker reports the
/// replayed session's totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct WorkerStats {
    /// Frames of any kind received on the session.
    pub frames_received: u64,
    /// `Batch` frames ingested.
    pub batches_ingested: u64,
    /// Stream updates ingested across those batches.
    pub updates_ingested: u64,
    /// `Shard` replies served to midstream `Snapshot` requests.
    pub snapshots_served: u64,
}

/// Frame-level transport / codec failures.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The stream ended inside a frame (after a length prefix, or with a
    /// partial prefix) — the peer died mid-send.
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        declared: u64,
    },
    /// The payload bytes were rejected by the codec.
    Codec(String),
    /// A read timeout fired *inside* a frame — after part of the length
    /// prefix or payload was already consumed.  Unlike a timeout between
    /// frames (plain [`WireError::Io`] with `TimedOut`/`WouldBlock`), the
    /// stream is now desynchronized: resuming reads on it would misparse
    /// leftover frame bytes as a fresh length prefix.  Recovery must
    /// re-dial, never retry in place.
    TimedOutMidFrame,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "frame i/o failed: {e}"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Oversized { declared } => {
                write!(
                    f,
                    "frame declares {declared} payload bytes, above the {MAX_FRAME_LEN} cap"
                )
            }
            WireError::Codec(msg) => write!(f, "frame payload rejected: {msg}"),
            WireError::TimedOutMidFrame => {
                write!(f, "read timed out mid-frame; the stream is desynchronized")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed frame.  The caller flushes (frames are
/// usually batched behind a `BufWriter`; flush before expecting an answer).
///
/// # Errors
///
/// [`WireError::Oversized`] if the encoded frame exceeds [`MAX_FRAME_LEN`],
/// [`WireError::Io`] on transport failure.
pub fn write_frame(writer: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let payload = serde::to_bytes(frame);
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::Oversized {
            declared: payload.len() as u64,
        });
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(&payload)?;
    Ok(())
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a *clean* end of stream (no bytes where a length
/// prefix would start) — the peer closed the connection between frames.
///
/// # Errors
///
/// [`WireError::Truncated`] if the stream ends inside a frame,
/// [`WireError::Oversized`] on an absurd length prefix, [`WireError::Codec`]
/// if the payload does not decode, [`WireError::Io`] on transport failure.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(reader, &mut prefix, false)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Partial => return Err(WireError::Truncated),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized {
            declared: len as u64,
        });
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(reader, &mut payload, true)? {
        ReadOutcome::Full => {}
        _ => return Err(WireError::Truncated),
    }
    serde::from_bytes::<Frame>(&payload)
        .map(Some)
        .map_err(|e| WireError::Codec(e.to_string()))
}

/// Encodes one frame to its on-the-wire bytes (length prefix + payload),
/// exactly as [`write_frame`] would emit them.  The serve loop uses this to
/// build queued response bytes without holding a writer.
///
/// # Errors
///
/// [`WireError::Oversized`] if the encoded frame exceeds [`MAX_FRAME_LEN`].
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let mut wire = Vec::new();
    write_frame(&mut wire, frame)?;
    Ok(wire)
}

/// Reusable scratch for the allocation-free frame reader
/// ([`read_frame_into`]): the payload byte buffer plus decoded-batch
/// vectors, all retained (and regrown at most once) across reads.  One
/// `FrameBuf` per connection; the borrowed [`FrameView`] a read returns is
/// invalidated by the next read (the borrow checker enforces this).
#[derive(Debug, Default)]
pub struct FrameBuf {
    payload: Vec<u8>,
    items: Vec<u64>,
    updates: Vec<(u64, i64)>,
}

impl FrameBuf {
    /// Creates an empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One decoded frame from [`read_frame_into`]; batch contents borrow the
/// [`FrameBuf`] scratch instead of allocating per frame.
#[derive(Debug, PartialEq)]
pub enum FrameView<'a> {
    /// A `Batch(Items(…))` frame, decoded into the scratch.
    Items(&'a [u64]),
    /// A `Batch(Updates(…))` frame, decoded into the scratch.
    Updates(&'a [(u64, i64)]),
    /// Any other frame, decoded through the owning codec path (control
    /// frames are rare and small; only batches are worth borrowing).
    Owned(Frame),
}

/// Reads one length-prefixed frame without per-frame allocation.
///
/// Behaves exactly like [`read_frame`] — same clean-EOF contract, same
/// typed errors for the same malformed inputs — but `Batch` payloads are
/// decoded into `buf`'s retained vectors and returned as borrowed
/// [`FrameView::Items`] / [`FrameView::Updates`] slices; every other frame
/// comes back as [`FrameView::Owned`].  The hot ingest loop of a worker is
/// a long run of `Batch` frames, so after warmup this path performs no
/// allocation at all.
///
/// A batch whose bytes deviate in any way from the strict encoding
/// (length prefix not exactly covering the declared element count) falls
/// back to the owning codec so error text stays identical to
/// [`read_frame`].
///
/// # Errors
///
/// Exactly those of [`read_frame`].
pub fn read_frame_into<'a>(
    reader: &mut impl Read,
    buf: &'a mut FrameBuf,
) -> Result<Option<FrameView<'a>>, WireError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(reader, &mut prefix, false)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Partial => return Err(WireError::Truncated),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized {
            declared: len as u64,
        });
    }
    buf.payload.clear();
    buf.payload.resize(len, 0);
    match read_exact_or_eof(reader, &mut buf.payload, true)? {
        ReadOutcome::Full => {}
        _ => return Err(WireError::Truncated),
    }
    decode_payload(&buf.payload, &mut buf.items, &mut buf.updates).map(Some)
}

/// Decodes one complete frame payload, borrowing `Batch` contents into the
/// caller's retained scratch vectors.  This is the single decode shared by
/// the blocking reader ([`read_frame_into`]) and the incremental
/// [`FrameDecoder`], so the two paths cannot drift in layout or error text.
///
/// Fast path: a strictly well-formed `Batch` frame.  Layout (all LE):
/// `[0..4)` Frame variant 1 = Batch, `[4..8)` payload variant (0 = Items,
/// 1 = Updates), `[8..16)` element count u64, then count × stride bytes.
/// A batch whose bytes deviate in any way (length not exactly covering the
/// declared element count) falls back to the owning codec so error text
/// stays identical to [`read_frame`].
fn decode_payload<'a>(
    payload: &[u8],
    items: &'a mut Vec<u64>,
    updates: &'a mut Vec<(u64, i64)>,
) -> Result<FrameView<'a>, WireError> {
    let len = payload.len();
    if len >= 16 && payload[..4] == [1, 0, 0, 0] {
        let tag = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes"));
        let count_bytes: [u8; 8] = payload[8..16].try_into().expect("8 bytes");
        let count = u64::from_le_bytes(count_bytes) as usize;
        let stride: usize = match tag {
            0 => 8,
            1 => 16,
            _ => 0,
        };
        let strict_len = count
            .checked_mul(stride)
            .and_then(|body| body.checked_add(16));
        if stride != 0 && strict_len == Some(len) {
            let body = &payload[16..];
            match tag {
                0 => {
                    items.clear();
                    items.extend(
                        body.chunks_exact(8)
                            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
                    );
                    return Ok(FrameView::Items(items));
                }
                _ => {
                    updates.clear();
                    updates.extend(body.chunks_exact(16).map(|c| {
                        (
                            u64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                            i64::from_le_bytes(c[8..].try_into().expect("8 bytes")),
                        )
                    }));
                    return Ok(FrameView::Updates(updates));
                }
            }
        }
    }
    serde::from_bytes::<Frame>(payload)
        .map(FrameView::Owned)
        .map_err(|e| WireError::Codec(e.to_string()))
}

/// Incremental, resumable frame decoding for nonblocking readers.
///
/// The blocking readers above assume they may park inside a frame until the
/// rest arrives.  A readiness-driven serve loop cannot: a socket read
/// returns whatever bytes exist — possibly half a length prefix — and the
/// loop must move on to other sessions.  `FrameDecoder` owns that partial
/// state: [`push`](Self::push) whatever arrived, then drain complete frames
/// with [`next_view`](Self::next_view) (`Ok(None)` = need more bytes).
///
/// The decoder enforces the same [`MAX_FRAME_LEN`] bound and produces the
/// same typed errors as [`read_frame`] on the same byte streams (pinned by
/// the byte-at-a-time property test), and
/// [`mid_frame`](Self::mid_frame) reports whether buffered bytes stop
/// inside a frame — the fact the desync-vs-timeout fault taxonomy is built
/// on.  Memory stays bounded: consumed bytes are compacted away, and a
/// frame can demand at most `4 + MAX_FRAME_LEN` buffered bytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Accumulated wire bytes; `[consumed..]` is not yet handed out.
    buf: Vec<u8>,
    /// Front bytes already returned as complete frames.
    consumed: usize,
    items: Vec<u64>,
    updates: Vec<(u64, i64)>,
}

/// Compact once the dead front exceeds this many bytes (and dominates the
/// buffer), so a long-lived session cannot grow its buffer unboundedly.
const DECODER_COMPACT_THRESHOLD: usize = 64 << 10;

impl FrameDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the buffered bytes end *inside* a frame (a partial length
    /// prefix or a partial payload).  A read timeout observed in this state
    /// means the stream is desynchronized — see
    /// [`WireError::TimedOutMidFrame`].
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.consumed
    }

    /// Bytes currently buffered and not yet decoded.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Decodes the next complete frame, borrowing `Batch` contents from the
    /// decoder's scratch (the returned view is invalidated by the next
    /// call).  Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] on an absurd length prefix,
    /// [`WireError::Codec`] if a complete payload does not decode.  Errors
    /// are sticky in practice: the caller must drop the stream, since the
    /// byte position is no longer trustworthy.
    pub fn next_view(&mut self) -> Result<Option<FrameView<'_>>, WireError> {
        self.compact();
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                declared: len as u64,
            });
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let start = self.consumed + 4;
        self.consumed = start + len;
        decode_payload(
            &self.buf[start..start + len],
            &mut self.items,
            &mut self.updates,
        )
        .map(Some)
    }

    /// Owning convenience over [`next_view`](Self::next_view): the next
    /// complete frame as a [`Frame`], or `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Exactly those of [`next_view`](Self::next_view).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        Ok(self.next_view()?.map(|view| match view {
            FrameView::Items(items) => Frame::Batch(BatchPayload::Items(items.to_vec())),
            FrameView::Updates(updates) => Frame::Batch(BatchPayload::Updates(updates.to_vec())),
            FrameView::Owned(frame) => frame,
        }))
    }

    /// Drops fully consumed front bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed > DECODER_COMPACT_THRESHOLD {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

enum ReadOutcome {
    Full,
    CleanEof,
    Partial,
}

/// `read_exact`, but distinguishing "no bytes at all" (clean EOF between
/// frames) from "some bytes then EOF" (peer died mid-frame), and — when
/// `frame_started` or once any byte of `buf` landed — classifying a read
/// timeout as the desyncing [`WireError::TimedOutMidFrame`] instead of a
/// recoverable-in-place [`WireError::Io`] timeout.
fn read_exact_or_eof(
    reader: &mut impl Read,
    buf: &mut [u8],
    frame_started: bool,
) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock)
                    && (frame_started || filled > 0) =>
            {
                return Err(WireError::TimedOutMidFrame);
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame) -> Frame {
        let mut wire = Vec::new();
        write_frame(&mut wire, frame).expect("write");
        let mut reader = wire.as_slice();
        let back = read_frame(&mut reader).expect("read").expect("one frame");
        assert!(reader.is_empty(), "trailing bytes after one frame");
        back
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = [
            Frame::Hello(HelloConfig {
                worker_index: 3,
                spec: SketchSpec::f0("knw-f0", 0.1, 1 << 20, 42),
            }),
            Frame::Batch(BatchPayload::Items(vec![1, 2, 3])),
            Frame::Batch(BatchPayload::Updates(vec![(7, -2), (9, 5)])),
            Frame::Snapshot,
            Frame::Finish,
            Frame::Shard(vec![0xDE, 0xAD, 0xBE, 0xEF]),
            Frame::Err("boom".into()),
            Frame::Restore(vec![7, 7, 7]),
            Frame::Register("10.0.0.9:7001".into()),
            Frame::Stats(WorkerStats {
                frames_received: 100,
                batches_ingested: 42,
                updates_ingested: 171_000,
                snapshots_served: 3,
            }),
        ];
        for frame in &frames {
            assert_eq!(&round_trip(frame), frame, "{} deviated", frame.kind());
        }
    }

    /// Golden bytes: the encoding is pinned so the aggregator and worker
    /// binaries (separate executables!) cannot drift apart silently.  If
    /// this test fails, the wire format changed — bump both sides together.
    #[test]
    fn golden_bytes_are_stable() {
        // Finish = variant index 3, no fields; prefix says 4 payload bytes.
        let mut finish = Vec::new();
        write_frame(&mut finish, &Frame::Finish).expect("write");
        assert_eq!(finish, [4, 0, 0, 0, 3, 0, 0, 0]);

        // Shard(vec![1, 2]): variant 4, then a u64 length-prefixed byte Vec.
        let mut shard = Vec::new();
        write_frame(&mut shard, &Frame::Shard(vec![1, 2])).expect("write");
        assert_eq!(
            shard,
            [
                14, 0, 0, 0, // u32 frame length: 4 (tag) + 8 (vec len) + 2
                4, 0, 0, 0, // variant index 4 = Shard
                2, 0, 0, 0, 0, 0, 0, 0, // vec length 2 (u64 LE)
                1, 2, // the bytes
            ]
        );

        // Batch(Items([5])): variant 1, payload variant 0, one u64 item.
        let mut batch = Vec::new();
        write_frame(&mut batch, &Frame::Batch(BatchPayload::Items(vec![5]))).expect("write");
        assert_eq!(
            batch,
            [
                24, 0, 0, 0, // frame length: 4 + 4 + 8 + 8
                1, 0, 0, 0, // variant index 1 = Batch
                0, 0, 0, 0, // payload variant 0 = Items
                1, 0, 0, 0, 0, 0, 0, 0, // vec length 1
                5, 0, 0, 0, 0, 0, 0, 0, // the item
            ]
        );

        // Restore(vec![9]): the recovery prologue, appended as variant 6 so
        // every pre-recovery variant index above stays untouched.
        let mut restore = Vec::new();
        write_frame(&mut restore, &Frame::Restore(vec![9])).expect("write");
        assert_eq!(
            restore,
            [
                13, 0, 0, 0, // frame length: 4 (tag) + 8 (vec len) + 1
                6, 0, 0, 0, // variant index 6 = Restore
                1, 0, 0, 0, 0, 0, 0, 0, // vec length 1 (u64 LE)
                9, // the byte
            ]
        );

        // Register("a:1"): the worker-discovery announcement, variant 7.
        let mut register = Vec::new();
        write_frame(&mut register, &Frame::Register("a:1".into())).expect("write");
        assert_eq!(
            register,
            [
                15, 0, 0, 0, // frame length: 4 (tag) + 8 (string len) + 3
                7, 0, 0, 0, // variant index 7 = Register
                3, 0, 0, 0, 0, 0, 0, 0, // string length 3 (u64 LE)
                b'a', b':', b'1', // the UTF-8 bytes
            ]
        );

        // Stats: the worker-side ingest counters, appended as variant 8 so
        // every earlier variant index stays untouched; four u64 fields in
        // declaration order.
        let mut stats = Vec::new();
        write_frame(
            &mut stats,
            &Frame::Stats(WorkerStats {
                frames_received: 9,
                batches_ingested: 2,
                updates_ingested: 300,
                snapshots_served: 1,
            }),
        )
        .expect("write");
        assert_eq!(
            stats,
            [
                36, 0, 0, 0, // frame length: 4 (tag) + 4 × 8 (the counters)
                8, 0, 0, 0, // variant index 8 = Stats
                9, 0, 0, 0, 0, 0, 0, 0, // frames_received
                2, 0, 0, 0, 0, 0, 0, 0, // batches_ingested
                44, 1, 0, 0, 0, 0, 0, 0, // updates_ingested = 300
                1, 0, 0, 0, 0, 0, 0, 0, // snapshots_served
            ]
        );
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).expect("clean eof").is_none());
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error_not_a_panic() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Hello(HelloConfig {
                worker_index: 0,
                spec: SketchSpec::l0("knw-l0", 0.1, 1 << 16, 7),
            }),
        )
        .expect("write");
        for cut in 1..wire.len() {
            let mut reader = &wire[..cut];
            let err = read_frame(&mut reader).expect_err("truncated read must fail");
            assert!(
                matches!(err, WireError::Truncated | WireError::Codec(_)),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_variant_tag_is_a_codec_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Finish).expect("write");
        wire[4] = 0xFF; // smash the Frame variant index
        let mut reader = wire.as_slice();
        assert!(matches!(read_frame(&mut reader), Err(WireError::Codec(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let wire = u32::MAX.to_le_bytes();
        let mut reader = wire.as_slice();
        assert!(matches!(
            read_frame(&mut reader),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn trailing_garbage_inside_a_frame_is_a_codec_error() {
        // A valid Finish payload padded with one extra byte, with the
        // length prefix covering the padding: strict decode must reject.
        let wire = [5u8, 0, 0, 0, 3, 0, 0, 0, 9];
        let mut reader = wire.as_slice();
        assert!(matches!(read_frame(&mut reader), Err(WireError::Codec(_))));
    }

    #[test]
    fn borrowed_reader_agrees_with_owning_reader_on_every_frame_kind() {
        let frames = [
            Frame::Hello(HelloConfig {
                worker_index: 1,
                spec: SketchSpec::f0("knw-f0", 0.1, 1 << 20, 42),
            }),
            Frame::Batch(BatchPayload::Items(vec![])),
            Frame::Batch(BatchPayload::Items(vec![1, 2, u64::MAX])),
            Frame::Batch(BatchPayload::Updates(vec![(7, -2), (9, i64::MIN)])),
            Frame::Snapshot,
            Frame::Finish,
            Frame::Shard(vec![0xAB; 100]),
            Frame::Err("boom".into()),
            Frame::Restore(vec![1, 2, 3]),
            Frame::Register("h:1".into()),
            Frame::Stats(WorkerStats {
                frames_received: 4,
                batches_ingested: 2,
                updates_ingested: 8_192,
                snapshots_served: 0,
            }),
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).expect("write");
        }
        // One scratch across the whole stream, as the worker loop uses it.
        let mut buf = FrameBuf::new();
        let mut reader = wire.as_slice();
        for frame in &frames {
            let view = read_frame_into(&mut reader, &mut buf)
                .expect("read")
                .expect("a frame");
            match (frame, view) {
                (Frame::Batch(BatchPayload::Items(v)), FrameView::Items(s)) => {
                    assert_eq!(v.as_slice(), s);
                }
                (Frame::Batch(BatchPayload::Updates(v)), FrameView::Updates(s)) => {
                    assert_eq!(v.as_slice(), s);
                }
                (expected, FrameView::Owned(got)) => assert_eq!(expected, &got),
                (expected, got) => panic!("{} decoded as {got:?}", expected.kind()),
            }
        }
        assert!(read_frame_into(&mut reader, &mut buf)
            .expect("clean eof")
            .is_none());
    }

    #[test]
    fn borrowed_reader_reports_the_same_errors_as_the_owning_reader() {
        // Malformed batch: length prefix covers one byte more than the
        // declared element count — the fast path must decline and the
        // fallback must produce the owning reader's codec error.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Batch(BatchPayload::Items(vec![5]))).expect("write");
        wire.push(0); // payload grows by one byte…
        wire[0] += 1; // …and the prefix covers it
        let owning_err = read_frame(&mut wire.as_slice()).expect_err("owning rejects");
        let mut buf = FrameBuf::new();
        let borrowed_err =
            read_frame_into(&mut wire.as_slice(), &mut buf).expect_err("borrowed rejects");
        assert_eq!(owning_err.to_string(), borrowed_err.to_string());

        // Truncation and oversized prefixes behave identically too.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, &Frame::Batch(BatchPayload::Items(vec![5]))).expect("write");
        truncated.pop();
        assert!(matches!(
            read_frame_into(&mut truncated.as_slice(), &mut buf),
            Err(WireError::Truncated)
        ));
        let oversized = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame_into(&mut oversized.as_slice(), &mut buf),
            Err(WireError::Oversized { .. })
        ));
    }

    /// Every frame kind of the protocol, encoded back to back.
    fn frame_zoo() -> Vec<Frame> {
        vec![
            Frame::Hello(HelloConfig {
                worker_index: 2,
                spec: SketchSpec::l0("knw-l0", 0.2, 1 << 12, 9),
            }),
            Frame::Batch(BatchPayload::Items(vec![])),
            Frame::Batch(BatchPayload::Items(vec![1, 2, u64::MAX])),
            Frame::Batch(BatchPayload::Updates(vec![(7, -2), (9, i64::MIN)])),
            Frame::Snapshot,
            Frame::Finish,
            Frame::Shard(vec![0xAB; 64]),
            Frame::Err("boom".into()),
            Frame::Restore(vec![1, 2, 3]),
            Frame::Register("h:1".into()),
            Frame::Stats(WorkerStats {
                frames_received: 7,
                batches_ingested: 3,
                updates_ingested: 12_288,
                snapshots_served: 1,
            }),
        ]
    }

    #[test]
    fn decoder_fed_byte_at_a_time_yields_every_frame() {
        let frames = frame_zoo();
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).expect("write");
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for &byte in &wire {
            decoder.push(std::slice::from_ref(&byte));
            while let Some(frame) = decoder.next_frame().expect("decode") {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, frames);
        assert!(!decoder.mid_frame(), "all bytes consumed");
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decoder_mid_frame_tracks_partial_prefixes_and_payloads() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Finish).expect("write");
        let mut decoder = FrameDecoder::new();
        assert!(!decoder.mid_frame(), "empty decoder is between frames");
        for cut in 1..wire.len() {
            decoder.push(&wire[cut - 1..cut]);
            assert!(decoder.next_frame().expect("partial").is_none());
            assert!(decoder.mid_frame(), "{cut} bytes in is mid-frame");
        }
        decoder.push(&wire[wire.len() - 1..]);
        assert_eq!(decoder.next_frame().expect("decode"), Some(Frame::Finish));
        assert!(!decoder.mid_frame(), "back between frames");
    }

    #[test]
    fn decoder_rejects_oversized_and_corrupt_frames_like_read_frame() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decoder.next_frame(),
            Err(WireError::Oversized { .. })
        ));

        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Finish).expect("write");
        wire[4] = 0xFF; // smash the Frame variant index
        let owning = read_frame(&mut wire.as_slice()).expect_err("owning rejects");
        let mut decoder = FrameDecoder::new();
        decoder.push(&wire);
        let incremental = decoder.next_frame().expect_err("decoder rejects");
        assert_eq!(owning.to_string(), incremental.to_string());
    }

    #[test]
    fn decoder_compacts_consumed_bytes() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Batch(BatchPayload::Items(vec![7; 512]))).expect("write");
        let mut decoder = FrameDecoder::new();
        // Far more traffic than the compaction threshold: buffered() staying
        // at zero between frames proves consumed bytes are dropped, not
        // accumulated for the connection's lifetime.
        for _ in 0..64 {
            decoder.push(&wire);
            match decoder.next_view().expect("decode").expect("one frame") {
                FrameView::Items(items) => assert_eq!(items.len(), 512),
                other => panic!("expected Items, got {other:?}"),
            }
            assert_eq!(decoder.buffered(), 0);
        }
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        for frame in frame_zoo() {
            let mut written = Vec::new();
            write_frame(&mut written, &frame).expect("write");
            assert_eq!(encode_frame(&frame).expect("encode"), written);
        }
    }

    /// A reader that yields a fixed prefix of bytes, then fails every
    /// subsequent read with a timeout — the socket shape of a peer stalling
    /// under `SO_RCVTIMEO`.
    struct StallingReader {
        bytes: Vec<u8>,
        at: usize,
    }

    impl Read for StallingReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.at == self.bytes.len() {
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "stalled"));
            }
            let n = out.len().min(self.bytes.len() - self.at);
            out[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_between_frames_stays_a_recoverable_io_error() {
        let mut reader = StallingReader {
            bytes: Vec::new(),
            at: 0,
        };
        match read_frame(&mut reader) {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), ErrorKind::WouldBlock),
            other => panic!("expected a plain Io timeout, got {other:?}"),
        }
    }

    #[test]
    fn timeout_mid_frame_is_typed_desync_at_every_cut() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Batch(BatchPayload::Items(vec![5, 6]))).expect("write");
        // Stall after every strict prefix — inside the length prefix and
        // inside the payload alike: the stream position is lost either way.
        for cut in 1..wire.len() {
            let mut reader = StallingReader {
                bytes: wire[..cut].to_vec(),
                at: 0,
            };
            match read_frame(&mut reader) {
                Err(WireError::TimedOutMidFrame) => {}
                other => panic!("cut {cut}: expected TimedOutMidFrame, got {other:?}"),
            }
            let mut reader = StallingReader {
                bytes: wire[..cut].to_vec(),
                at: 0,
            };
            let mut buf = FrameBuf::new();
            match read_frame_into(&mut reader, &mut buf) {
                Err(WireError::TimedOutMidFrame) => {}
                other => panic!("cut {cut} (borrowed): expected TimedOutMidFrame, got {other:?}"),
            }
        }
    }
}
