//! A thin, dependency-free readiness-polling wrapper over the kernel's
//! `epoll(7)` interface — the event-notification substrate of the
//! multi-session serve loop (see [`session`](crate::session)).
//!
//! The workspace builds in offline environments with no crates.io access,
//! so `mio`/`tokio` cannot be dependencies; the same discipline that gives
//! `dev-shims` its hand-rolled `serde` gives this module hand-declared
//! `extern "C"` bindings against the libc symbols `std` already links
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`).  Nothing here is
//! clever: one level-triggered epoll instance, `u64` tokens chosen by the
//! caller, and a `wait` that fills a caller-owned event buffer.
//!
//! Level-triggered is deliberate: a readiness the loop could not fully
//! consume this tick (short read, paused session) simply reports again
//! next tick — no edge-tracking state machine to get wrong.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::time::Duration;

// The epoll constants, verbatim from the kernel ABI.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`.  On x86-64 the kernel declares it
/// packed (no padding between `events` and `data`); other architectures
/// use natural layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// Which readiness classes a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    bits: u32,
}

impl Event {
    /// The fd has bytes to read (or a hangup to observe by reading 0).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The fd accepts writes.
    #[must_use]
    pub fn writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed or the fd is in an error state; the next read or
    /// write will report the specifics.
    #[must_use]
    pub fn hangup(&self) -> bool {
        self.bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }
}

/// A level-triggered epoll instance: register fds under caller-chosen
/// tokens, then [`wait`](Self::wait) for readiness.  The epoll fd is
/// closed on drop.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    /// Kernel-filled scratch, retained across waits.
    scratch: Vec<EpollEvent>,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `repr(packed)` forbids referencing the fields directly; copy out.
        let (events, data) = (self.events, self.data);
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

/// Events one `wait` call can deliver; a busier loop simply sees the rest
/// next tick (level-triggered readiness re-reports).
const MAX_EVENTS_PER_WAIT: usize = 1024;

impl Poller {
    /// Creates a fresh epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The `epoll_create1(2)` failure, if any.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an
        // error reported through errno.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            scratch: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS_PER_WAIT],
        })
    }

    /// Registers `fd` under `token` for `interest`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` failure, if any.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's interest (the token may change
    /// too).
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` failure, if any.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest.bits(),
            data: token,
        };
        // SAFETY: epfd and fd are owned-open fds and the event pointer is a
        // valid, initialized struct for the duration of the call.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Removes `fd` from the instance.  (Closing the fd removes it too;
    /// explicit deregistration keeps the bookkeeping honest when the fd
    /// outlives its session.)
    ///
    /// # Errors
    ///
    /// The `epoll_ctl(2)` failure, if any.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut event = EpollEvent { events: 0, data: 0 };
        // SAFETY: epfd and fd are owned-open fds; the event pointer is a
        // valid (ignored for DEL, but pre-2.6.9-kernel-safe) struct.
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Waits for readiness, filling `events` (cleared first).  `None`
    /// blocks indefinitely; a zero timeout polls.  An `EINTR`-interrupted
    /// wait returns zero events instead of an error — the caller's loop
    /// just ticks again.
    ///
    /// # Errors
    ///
    /// The `epoll_wait(2)` failure, if any.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(t) => c_int::try_from(t.as_millis().min(i32::MAX as u128)).expect("clamped"),
        };
        // SAFETY: the scratch buffer is a live, properly sized allocation
        // of `EpollEvent`; the kernel writes at most `maxevents` entries.
        let rc = unsafe {
            epoll_wait(
                self.epfd,
                self.scratch.as_mut_ptr(),
                c_int::try_from(self.scratch.len()).expect("bounded scratch"),
                timeout_ms,
            )
        };
        if rc < 0 {
            let error = io::Error::last_os_error();
            if error.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(error);
        }
        let count = rc as usize;
        events.extend(self.scratch[..count].iter().map(|raw| {
            let (bits, data) = (raw.events, raw.data);
            Event { token: data, bits }
        }));
        Ok(count)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd was returned open by epoll_create1 and is closed
        // exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_tracks_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        let mut events = Vec::new();

        // A fresh, empty socket: writable but not readable.
        poller
            .register(server.as_raw_fd(), 7, Interest::BOTH)
            .expect("register");
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        let event = events.iter().find(|e| e.token == 7).expect("one event");
        assert!(event.writable() && !event.readable());

        // Bytes arrive: read-readiness reports, and (level-triggered)
        // keeps reporting until consumed.
        client.write_all(b"ping").expect("write");
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .expect("wait");
            assert!(events.iter().any(|e| e.token == 7 && e.readable()));
        }
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).expect("read"), 4);

        // Interest can be narrowed: write-only registration stops the
        // read-readiness wakeups even with bytes pending.
        client.write_all(b"more").expect("write");
        poller
            .modify(server.as_raw_fd(), 7, Interest::WRITABLE)
            .expect("modify");
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        let event = events.iter().find(|e| e.token == 7).expect("one event");
        assert!(event.writable());

        // Peer hangup surfaces as readable/hangup readiness.
        poller
            .modify(server.as_raw_fd(), 7, Interest::READABLE)
            .expect("modify");
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .expect("wait");
        let event = events.iter().find(|e| e.token == 7).expect("one event");
        assert!(event.readable());

        poller.deregister(server.as_raw_fd()).expect("deregister");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert!(events.is_empty(), "deregistered fd must not report");
    }

    #[test]
    fn zero_timeout_polls_without_blocking() {
        let mut poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let started = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait");
        assert!(events.is_empty());
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
