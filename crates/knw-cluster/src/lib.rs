//! Multi-process distributed aggregation over the KNW serde wire format.
//!
//! The KNW sketches merge *exactly*: shards built over disjoint substreams
//! reproduce the single-stream estimate bit for bit (`knw-core`'s
//! mergeable contract, PR 1 and PR 2).  Until now the repo only exercised
//! that property inside one process — threads exchanging cloned sketches.
//! This crate is the missing layer: worker **processes** that never share
//! memory ingest substreams and exchange **serialized** shards with an
//! aggregator, which merges them with the same `merge_dyn` fold the
//! in-process engine uses.  Workers scale across cores, across machines,
//! or across restarts — and the combine step at the end is cheap and
//! exact.
//!
//! # Process topology and transports
//!
//! ```text
//!                         ┌───────────────────────────┐
//!                         │        aggregator         │
//!                         │  ShardBatcher (RoundRobin │
//!                         │  or HashAffine) + optional│
//!                         │  L0 pre-coalescing        │
//!                         └─┬───────┬───────┬───────┬─┘
//!              Hello,Batch…,│       │       │       │ …Finish
//!                           ▼       ▼       ▼       ▼
//!                      ┌───────┐┌───────┐┌───────┐┌───────┐
//!                      │worker0││worker1││worker2││worker3│  spawned children
//!                      │sketch ││sketch ││sketch ││sketch │  or listening hosts
//!                      └───┬───┘└───┬───┘└───┬───┘└───┬───┘
//!                          │        │        │        │
//!                          └──one Shard{serialized bytes} each──┐
//!                                                               ▼
//!                          deserialize → merge_dyn fold → merged estimate
//! ```
//!
//! The frame layer is transport-agnostic, and the [`transport`] module
//! names the two transports that carry it:
//!
//! * [`PipeTransport`] — [`ClusterAggregator::spawn`] forks `knw-worker`
//!   child processes and speaks frames over stdin/stdout pipes (the
//!   single-box topology);
//! * [`TcpTransport`] — [`ClusterAggregator::connect_workers`] connects to
//!   **already-running** workers (`knw-worker --listen <addr>`, the
//!   [`serve`] loop) over TCP sockets with bounded connect/read/write
//!   timeouts: the multi-host topology.  `knw-aggregate --transport tcp
//!   --connect host:port …` is the CLI front.
//!
//! # The frame protocol
//!
//! All traffic is length-prefixed frames (`u32` little-endian length +
//! serde-codec payload, see [`frame`]):
//!
//! | frame | direction | meaning |
//! |---|---|---|
//! | `Hello{worker_index, spec}` | aggregator → worker | handshake: which sketch to build ([`SketchSpec`]: stream model, zoo name, ε, n, seed) |
//! | `Batch{Items\|Updates}` | aggregator → worker | a routed batch of stream updates |
//! | `Snapshot` | aggregator → worker | request the current shard bytes (midstream reporting); the worker keeps running |
//! | `Finish` | aggregator → worker | finalize: send the shard and exit cleanly |
//! | `Shard{bytes}` | worker → aggregator | the serialized shard sketch (the workspace serde codec) |
//! | `Err{message}` | worker → aggregator | worker-side failure, before the worker exits nonzero |
//! | `Stats{counters}` | worker → aggregator | session ingest counters ([`WorkerStats`](frame::WorkerStats)), sent once before the final `Finish` shard |
//!
//! Routing reuses [`knw_engine::ShardBatcher`] — the *same* code that
//! routes the in-process `ShardedEngine`/`ShardRouter` — so in-process and
//! cross-process runs of the same [`EngineConfig`](knw_engine::EngineConfig)
//! produce identical shard contents.  Two policies:
//! [`RoutingPolicy::RoundRobin`](knw_engine::RoutingPolicy) (batch-cyclic,
//! valid because every workspace sketch merges exactly under arbitrary
//! partitions) and
//! [`RoutingPolicy::HashAffine`](knw_engine::RoutingPolicy) (item → fixed
//! worker; required for correct by-item partitioning of turnstile streams
//! when a shard structure needs to see all of an item's inserts and
//! deletes).  For turnstile streams the aggregator can additionally
//! **pre-coalesce** batches (sum each item's deltas via
//! [`knw_core::coalesce`]) before the shard split, cutting wire traffic
//! and restoring the coalescing window the split would otherwise dilute.
//!
//! # The zero-copy wire path
//!
//! `Batch` frames dominate the wire traffic, and both ends handle them
//! without per-frame allocation:
//!
//! * **Sending** ([`aggregator`]): each routed batch is encoded once into
//!   a buffer the aggregator reuses across every send (the fixed-width
//!   layout is written directly; no owning [`Frame`] or payload `Vec` is
//!   built) and handed to the link as raw bytes
//!   ([`WorkerConnection::send_raw`]).  With recovery enabled, the replay
//!   journal shares the *encoded* frame bytes as `Arc<[u8]>` — replay
//!   re-sends them verbatim, with no re-encoding.
//! * **Receiving** ([`worker`]): the ingest loop decodes frames with
//!   [`read_frame_into`] into a per-connection [`FrameBuf`], yielding a
//!   [`FrameView`] whose batch contents *borrow* the scratch buffer.
//!
//! The ownership rules of the borrowed decode: a [`FrameView`] borrows its
//! [`FrameBuf`] until dropped, so each view must be fully consumed (the
//! batch applied to the shard sketch) before the next
//! [`read_frame_into`] call reuses the scratch — the borrow checker
//! enforces exactly this.  A caller that needs a frame to outlive the next
//! read must copy the borrowed slice out (or use the owning
//! [`read_frame`], which allocates per frame).  Non-batch frames are rare
//! control traffic and arrive as [`FrameView::Owned`]; strictness is
//! unchanged — bytes a borrowing decode rejects are rejected with the
//! same error the owning decode reports.
//!
//! # Sessions & the serve loop
//!
//! The blocking topologies above put the aggregator at one end of the
//! wire.  The [`session`] module (Linux) turns it around into
//! **estimation-as-a-service**: `knw-aggregate --serve <addr>` runs a
//! single-threaded nonblocking readiness loop ([`serve_sessions`], built
//! on the [`poll`] epoll wrapper — the offline-shim discipline again, no
//! external event library) that multiplexes hundreds-to-thousands of
//! concurrent *client* sessions over one shared worker fleet.  Each
//! session is a state machine, never a thread:
//!
//! ```text
//!            Hello{spec}          Batch*                Snapshot
//!  accept ──► Greeting ─────────► Streaming ──────────► Snapshotting ─┐
//!                │ bad spec /         │  ▲     Shard{bytes} queued    │
//!                │ wrong frame        │  └──────────────◄─────────────┘
//!                ▼                    │ Finish
//!             Errored ◄── decode ─────┼──────► Snapshotting{finish}
//!            (Err frame    error      │                 │ Shard{bytes}
//!             queued)                 ▼                 ▼
//!                                 (clean EOF)        Finished
//! ```
//!
//! Inbound bytes feed a per-session resumable [`FrameDecoder`] — the
//! loop reads whatever the socket has, and partial frames simply wait in
//! the decoder until the rest arrives (no blocking read ever holds the
//! loop hostage).  Decoded batches route into the shared `ShardBatcher`
//! exactly as the blocking aggregator's own ingest does; since every
//! sketch merges exactly and is order/partition independent, arbitrary
//! session interleavings stay bit-identical to a single-process run over
//! the union of the streams.  `Snapshot`/`Finish` requests arriving in
//! the same tick coalesce into **one** point-in-time merge (pending
//! batcher contents included), whose encoded `Shard` reply is shared.
//!
//! Backpressure is per session and byte-bounded: replies go into a
//! bounded write queue, and a session whose queue exceeds
//! [`SessionServeOptions::max_write_queue`] stops being *read* until it
//! drains below half — a slow reader throttles only itself.  The fault
//! taxonomy mirrors the wire layer's timeout/desync split: a session
//! idle *between* frames is a plain idle timeout, while one that stalls
//! *mid-frame* (decoder holding a partial frame) is desynchronized and
//! its `Err` frame says so; on the aggregator→worker side the same split
//! is [`ClusterError::Timeout`] (recoverable in place) versus
//! [`ClusterError::Desynced`] (recoverable only by re-dial + journal
//! replay).  Fleet-side failures poison the aggregator under the same
//! rules as the blocking path and abort the serve loop typed.
//!
//! # Failure model & recovery
//!
//! A worker crash is detected at the link (broken write, EOF where a
//! `Shard` was due, nonzero exit, reset connection) and surfaces as
//! [`ClusterError::WorkerDied`] — the cross-process mirror of the engine's
//! [`SketchError::ShardPanicked`](knw_core::SketchError::ShardPanicked):
//! a lost shard means the merged estimate would silently undercount, so no
//! estimate is produced.  The socket transport adds two failure shapes of
//! its own, each typed: a worker that was never reachable is
//! [`ClusterError::ConnectFailed`] (raised before any frame flows), and a
//! half-open or stalled peer trips the transport's read/write timeouts as
//! [`ClusterError::Timeout`] — every failure mode resolves within a
//! bounded interval; nothing hangs.  Malformed frames and worker-reported
//! failures get their own typed variants; nothing in the protocol path
//! panics on bad bytes.
//!
//! With a [`RecoveryPolicy`] configured
//! ([`TcpClusterConfig::with_recovery`], [`ClusterConfig::with_recovery`],
//! `knw-aggregate --recover`), those link faults stop being run-fatal.
//! The aggregator keeps a bounded per-shard **replay journal** — the
//! serialized checkpoint of the last acknowledged snapshot plus every
//! batch routed to the shard since ([`RecoveryPolicy::journal_cap`] bounds
//! it, in updates) — and on `WorkerDied` / `Timeout` / `ConnectFailed` it
//! re-resolves the worker (the same address or a respawned child by
//! default; a spare host announced through the [`WorkerRegistry`] /
//! `knw-worker --register` handshake when the static address stays dead),
//! opens a fresh link, restores the checkpoint (`Restore` frame), replays
//! the journal, and resumes.  The replay is *exact*, not approximate:
//! every session starts from fresh state and a shard is a pure fold of its
//! batch stream, so `checkpoint ⊕ fold(journal)` reproduces the lost
//! shard byte for byte — each journaled batch is applied exactly once to
//! exactly one live session (a batch sent to a link that then faulted is
//! never double-counted, because the dead session's state is discarded
//! wholesale and rebuilt).  Reports wait for an in-flight recovery — a
//! snapshot never merges a partial cluster — and each acknowledged
//! snapshot truncates the journals to fresh checkpoints, so journal
//! memory is bounded by snapshot cadence, not stream length.
//!
//! Recovery itself fails typed and bounded: when every reconnect attempt
//! the policy allows ([`RecoveryPolicy::max_retries`], linear
//! [`RecoveryPolicy::backoff`]) is gone, reporting refuses with
//! [`ClusterError::RecoveryExhausted`]; when the journal had to be
//! discarded to honour its bound before the fault, with
//! [`ClusterError::JournalOverflow`].  Deterministic failures (protocol
//! violations, codec rejections, merge incompatibilities) are never
//! retried — a fresh worker fed the same journal would reproduce them.
//!
//! # Placement & elastic resharding
//!
//! The [`WorkerRegistry`] is a *placement* layer, not just a recovery
//! side-channel: [`ClusterAggregator::from_pool`] starts an N-worker fleet
//! entirely from the registry's pool of announced spares (`knw-worker
//! --listen 0 --register <reg>`) — no static address list.  The registry's
//! background prober ([`WorkerRegistry::start_probing`]) re-checks every
//! pooled spare with the same connect-and-greet liveness probe recovery
//! uses (not a bare connect — a backlog-only listener fails it), counts
//! results under `knw_registry_probe_{ok,failed}_total`, and pops skip
//! addresses that failed their last probe, so placements only ever draw
//! live workers.  When the pool cannot cover the requested fleet,
//! construction refuses typed with [`ClusterError::PoolExhausted`] — a
//! fleet is never silently smaller than asked for.
//!
//! On top of placement sits **exact elastic resharding**:
//! [`ClusterAggregator::scale_to`] grows or shrinks the live fleet
//! mid-stream with the estimate staying bit-identical to a single-process
//! run.  Routing follows a versioned **epoch table**
//! ([`knw_hash::rng::epoch_shard_for_key`] inside the shared
//! [`ShardBatcher`](knw_engine::ShardBatcher) — still the single hash
//! site): linear hashing makes each grow step a *refinement* that moves
//! keys from exactly one split-parent shard to the new shard.  A grow
//! splits the parent's replay journal under the new table (new shard =
//! parent checkpoint ⊕ moved updates; parent restarts with the kept ones),
//! a shrink `Finish`es the top shard and folds its final bytes into the
//! split parent via the same exact `merge_dyn` used everywhere else.
//! Retired workers hand their addresses back to the pool
//! ([`Transport::retire`]); `knw-aggregate --pool <reg> --workers N
//! --serve …` exposes the whole flow on the CLI, including a runtime
//! `rescale N` command.  Reshard traffic is counted under
//! `knw_cluster_reshard_{scale_ups,scale_downs,replayed_frames,
//! moved_keys}_total` and timed by `knw_cluster_reshard_latency_ns`.
//!
//! # Observability
//!
//! Every layer feeds the process-wide
//! [`knw_metrics`] registry (lock-free atomic counters/gauges and
//! log-linear histograms — cheap enough to leave on in the hot paths),
//! and structured leveled logging (`knw_log!`, `KNW_LOG` env filter)
//! replaces ad-hoc stderr prints throughout:
//!
//! * **engine routing** — per-shard `knw_engine_shard_{batches,updates}_total`
//!   from the in-process [`ShardedEngine`](knw_engine::ShardedEngine), and
//!   `knw_cluster_shard_*` for batches the aggregator routes to workers;
//! * **aggregator** — per-worker `knw_cluster_worker_{sends,send_bytes,
//!   faults,recoveries,replayed_frames}_total`, turnstile
//!   `knw_cluster_coalesced_updates_total`, and the
//!   `knw_cluster_snapshot_latency_ns` histogram around every merged
//!   snapshot/finish exchange;
//! * **workers** — each worker counts its own session ingest
//!   ([`WorkerStats`](frame::WorkerStats)) and ships it to the aggregator
//!   in a `Stats` frame just before its final `Finish` shard, where it
//!   lands as per-worker `knw_fleet_*_total` counters — fleet-wide health
//!   without a scrape endpoint per worker (listening workers also mirror
//!   the counters into their own registry as `knw_worker_*_total`);
//! * **serve loop** — `knw_serve_*` session/ingest counters and
//!   active/peak/write-queue gauges behind the [`ServeStats`] snapshot.
//!
//! The registry is scraped live in Prometheus text format 0.0.4 (see
//! [`expo`]): `knw-aggregate --metrics <addr>` answers scrapes from the
//! serve loop itself (one more epoll token, no thread) in `--serve` mode,
//! or from a background [`MetricsServer`] thread in the blocking modes.
//! Log lines are `key=value` structured records on stderr; values are
//! escaped/quoted before interpolation, so peer-supplied bytes (a garbage
//! client's frame, a failed session's message) cannot forge fields or
//! split lines.
//!
//! # Example
//!
//! The `knw-aggregate` binary is the demo front end (`knw-aggregate
//! --workers 4 --estimator knw-f0 …` over pipes, or `knw-aggregate
//! --transport tcp --connect host:port --connect host:port …` against
//! listening workers); programmatically:
//!
//! ```no_run
//! use knw_cluster::{ClusterConfig, F0ClusterAggregator, SketchSpec};
//!
//! let config = ClusterConfig::new(4, "target/release/knw-worker");
//! let spec = SketchSpec::f0("knw-f0", 0.05, 1 << 20, 7);
//! let mut cluster = F0ClusterAggregator::spawn(&config, &spec).unwrap();
//! for i in 0..1_000_000u64 {
//!     cluster.ingest(i % 250_000);
//! }
//! let merged = cluster.finish().unwrap();
//! println!("distinct ≈ {}", merged.estimate());
//! ```

pub mod aggregator;
pub mod error;
pub mod expo;
pub mod frame;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod recovery;
#[cfg(target_os = "linux")]
pub mod session;
pub mod spec;
pub mod transport;
pub mod worker;

pub use aggregator::{
    sibling_worker_exe, ClusterAggregator, ClusterConfig, ClusterUpdate, F0ClusterAggregator,
    L0ClusterAggregator,
};
pub use error::ClusterError;
pub use expo::MetricsServer;
pub use frame::{
    encode_frame, read_frame, read_frame_into, write_frame, BatchPayload, Frame, FrameBuf,
    FrameDecoder, FrameView, HelloConfig, SketchSpec, StreamMode, WireError, WorkerStats,
    MAX_FRAME_LEN,
};
#[cfg(target_os = "linux")]
pub use poll::{Event, Interest, Poller};
pub use recovery::{
    register_worker, RecoveryPolicy, WorkerRegistry, DEFAULT_BACKOFF, DEFAULT_JOURNAL_CAP,
    DEFAULT_MAX_RETRIES,
};
#[cfg(target_os = "linux")]
pub use session::{drive_sessions, serve_sessions, DriveStats, ServeStats, SessionServeOptions};
pub use spec::{
    build_f0, build_l0, f0_estimator_names, f0_shard_from_bytes, l0_estimator_names,
    l0_shard_from_bytes, WireF0Sketch, WireL0Sketch,
};
pub use transport::{
    probe_worker, spawn_listening_worker, ListeningWorkerFleet, PipeTransport, PoolTransport,
    TcpClusterConfig, TcpTransport, Transport, WorkerConnection, BANNER_DEADLINE,
    DEFAULT_CONNECT_TIMEOUT, DEFAULT_IO_TIMEOUT,
};
pub use worker::{run_worker, serve, serve_connection, ServeOptions, DEFAULT_MAX_ACCEPT_RETRIES};
