//! How the aggregator reaches its workers: the transport layer under the
//! frame protocol.
//!
//! The frame codec ([`crate::frame`]) and the worker loop
//! ([`crate::run_worker`]) are transport-agnostic — any `Read`/`Write` pair
//! carries them.  This module names the two transports the aggregator
//! ships with and hides their differences behind two small traits:
//!
//! * [`Transport`] — a factory that opens one link per worker index.
//!   [`PipeTransport`] *spawns* a `knw-worker` child process per worker and
//!   talks over its stdin/stdout pipes (the single-box topology).
//!   [`TcpTransport`] *connects* to already-running workers listening on
//!   TCP addresses (`knw-worker --listen <addr>`), which is what an actual
//!   multi-host run looks like.
//! * [`WorkerConnection`] — one live, framed, bidirectional link.  The
//!   aggregator only ever sends frames, receives frames, half-closes, and
//!   tears down; whether that maps to pipe writes and `waitpid` or socket
//!   writes and `shutdown(2)` is the connection's business.
//!
//! # Failure model
//!
//! Pipes fail like processes: a broken pipe or EOF means the child died.
//! Sockets add two failure shapes of their own, and each gets a typed
//! [`ClusterError`] variant mirroring
//! [`WorkerDied`](ClusterError::WorkerDied):
//!
//! * the peer was never there — [`ClusterError::ConnectFailed`] (refused,
//!   unreachable, or the connect timed out), raised before any frame flows;
//! * the peer is there but wedged — every TCP link carries read/write
//!   timeouts (see [`TcpClusterConfig::io_timeout`]), so a half-open or
//!   stalled worker surfaces as [`ClusterError::Timeout`] within a bounded
//!   interval instead of hanging the aggregation forever.

use crate::error::ClusterError;
use crate::frame::{read_frame, write_frame, Frame, WireError};
use crate::recovery::{RecoveryPolicy, WorkerRegistry};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default TCP connect timeout: long enough for a loaded host to accept,
/// short enough that a dead address fails the run promptly.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Default per-link read/write timeout on TCP transports.  Generous —
/// workers may legitimately spend a while serializing a large shard — but
/// bounded: a stalled peer surfaces as [`ClusterError::Timeout`] instead of
/// hanging the aggregation forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One live, framed, bidirectional link to a worker.
///
/// Implementations pair a buffered writer with a buffered reader over the
/// transport's byte stream; [`send`](Self::send) flushes, so a frame is on
/// the wire when the call returns.
pub trait WorkerConnection: Send {
    /// Writes one frame and flushes it to the worker.
    ///
    /// # Errors
    ///
    /// The wire-level failure; the caller attributes it to a worker index.
    fn send(&mut self, frame: &Frame) -> Result<(), WireError>;

    /// Writes one *pre-encoded* frame — length prefix included, exactly as
    /// [`write_frame`] would lay it out — and flushes it.  This is the
    /// aggregator's zero-copy dispatch path: the hot loop encodes each
    /// `Batch` frame once into a reused buffer and hands the bytes straight
    /// to the link, so neither an owning `Frame` nor a fresh payload `Vec`
    /// exists per send.  The default implementation decodes the bytes and
    /// delegates to [`send`](Self::send), so connection doubles that only
    /// observe decoded frames keep working unchanged.
    ///
    /// # Errors
    ///
    /// The wire-level failure; the caller attributes it to a worker index.
    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut reader = bytes;
        match read_frame(&mut reader)? {
            Some(frame) => self.send(&frame),
            None => Ok(()),
        }
    }

    /// Reads the worker's next frame (`Ok(None)` on clean end of stream).
    ///
    /// # Errors
    ///
    /// The wire-level failure; the caller attributes it to a worker index.
    fn recv(&mut self) -> Result<Option<Frame>, WireError>;

    /// Signals end-of-input to the worker: closes the pipe's stdin, or
    /// shuts down the socket's write half.  Idempotent; the read side
    /// stays open so a final `Shard` can still arrive.
    fn close_send(&mut self);

    /// Forcibly severs the link: kills the child process, or shuts the
    /// socket down in both directions.  Used for fault injection and for
    /// tear-down of abandoned aggregations.
    ///
    /// # Errors
    ///
    /// The underlying `kill(2)` / `shutdown(2)` failure, if any.
    fn kill(&mut self) -> std::io::Result<()>;

    /// Confirms the worker wound the session down cleanly after `Finish`:
    /// a pipe worker must exit with status zero; a TCP worker must close
    /// the connection (it keeps serving other sessions).  Returns
    /// `Ok(false)` for an unclean shutdown.
    ///
    /// # Errors
    ///
    /// The transport failure observed while confirming (including a read
    /// timeout on a socket that never closes).
    fn confirm_finished(&mut self) -> std::io::Result<bool>;
}

/// A factory for worker links: opens one [`WorkerConnection`] per worker
/// index.  The aggregator is written against this trait, so the pipe,
/// socket and any future transport share every line of routing, merging
/// and supervision code.
pub trait Transport: Send {
    /// Opens the link to worker `index` (spawns the child, or connects the
    /// socket).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Io`] if a child cannot be spawned,
    /// [`ClusterError::ConnectFailed`] if a socket cannot be connected.
    fn open(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError>;

    /// Re-opens the link to worker `index` after a fault, re-resolving the
    /// worker if the transport supports it.  The default is plain
    /// [`open`](Self::open) — re-spawn the child, re-dial the same address;
    /// [`TcpTransport`] additionally falls back to the next
    /// [registered](crate::WorkerRegistry) replacement address when the
    /// static one stays unreachable (and remembers the substitution for
    /// later faults).
    ///
    /// # Errors
    ///
    /// Same as [`open`](Self::open), from the last address attempted.
    fn reopen(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        self.open(index)
    }

    /// Tells the transport that worker `index` no longer exists — a
    /// scale-down retired its shard — so per-index state (a re-resolved
    /// replacement address, a pool assignment) must be expired rather than
    /// remembered forever, and a pooled address can be returned for later
    /// re-adoption.  The default is a no-op: the pipe transport holds no
    /// per-index state (the child dies with its connection).
    fn retire(&self, index: usize) {
        let _ = index;
    }
}

/// Liveness-probes a worker address before recovery or placement adopts
/// it: a bare TCP connect is not evidence of a serving worker (the kernel
/// completes handshakes into a dead or wedged process's listen backlog),
/// so the probe opens a throwaway connection, greets it with a frame, and
/// requires **any** framed reply within `io_timeout` — a live `knw-worker`
/// serve loop answers even this out-of-order greeting with a typed `Err`
/// frame before closing the session, while a dead one yields EOF and a
/// wedged one times out.  The probed session is separate from (and closed
/// before) any connection the caller actually adopts.
///
/// Shared by the TCP transport's recovery re-resolution, the pool
/// transport's placement draws, and the registry's continuous background
/// probing.
#[must_use]
pub fn probe_worker(addr: &str, connect_timeout: Duration, io_timeout: Duration) -> bool {
    let Ok(stream) = connect_first(addr, connect_timeout) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    let deadline = Some(io_timeout);
    if stream.set_read_timeout(deadline).is_err() || stream.set_write_timeout(deadline).is_err() {
        return false;
    }
    let mut writer = stream;
    let Ok(reader) = writer.try_clone() else {
        return false;
    };
    if write_frame(&mut writer, &Frame::Snapshot).is_err() || writer.flush().is_err() {
        return false;
    }
    matches!(read_frame(&mut BufReader::new(reader)), Ok(Some(_)))
}

/// Connects to the first reachable of `addr`'s resolved socket addresses
/// (a hostname may resolve to several — e.g. IPv6 then IPv4 for
/// `localhost`; a worker listening on only one family must still be
/// reachable).
fn connect_first(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last_error = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_error = Some(e),
        }
    }
    Err(last_error.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "address resolved to no socket address",
        )
    }))
}

/// Opens a configured framed TCP link to `addr`, attributing failure to
/// worker `index` — the connection-building body shared by [`TcpTransport`]
/// and [`PoolTransport`].
fn open_tcp_link(
    index: usize,
    addr: &str,
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
) -> Result<Box<dyn WorkerConnection>, ClusterError> {
    let connect = || -> std::io::Result<TcpConnection> {
        let stream = connect_first(addr, connect_timeout)?;
        // Frames are already batched; ship them as they flush.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let reader = stream.try_clone()?;
        Ok(TcpConnection {
            writer: BufWriter::new(stream),
            reader: BufReader::new(reader),
            write_open: true,
        })
    };
    match connect() {
        Ok(conn) => Ok(Box::new(conn)),
        Err(source) => Err(ClusterError::ConnectFailed {
            worker: index,
            addr: addr.to_string(),
            source,
        }),
    }
}

/// Spawns a `knw-worker --listen <addr>` child process and parses the
/// `listening on <addr>` banner it prints, returning the child and the
/// address it actually bound (meaningful with port 0).  The `--listen`
/// discovery handshake in one place, shared by benches, tests and
/// supervisors; the caller owns (and eventually reaps) the child.  The
/// child's stderr is inherited, so the serve loop's session-failure
/// diagnostics stay observable.
///
/// How long [`spawn_listening_worker`] waits for the `listening on`
/// banner before declaring the child stuck, killing it, and returning a
/// typed error.  Generous — a healthy worker prints within milliseconds;
/// the bound only exists so a wedged child (or one handed an address it
/// can never bind) cannot hang its supervisor forever.
pub const BANNER_DEADLINE: Duration = Duration::from_secs(10);

/// # Errors
///
/// Spawn failures; a child that exited without printing the banner (e.g.
/// handed an un-bindable address — reaped, with its exit status in the
/// message); a child that printed nothing within [`BANNER_DEADLINE`]
/// (killed and reaped, `ErrorKind::TimedOut`); or a child that printed
/// something other than the banner (killed and reaped,
/// `ErrorKind::InvalidData`).  The wait is bounded in every path — a
/// silent child can never hang its supervisor on the banner read.
pub fn spawn_listening_worker(
    worker_exe: &Path,
    addr: &str,
    extra_args: &[&str],
) -> std::io::Result<(Child, String)> {
    use std::io::BufRead;
    let mut child = Command::new(worker_exe)
        .arg("--listen")
        .arg(addr)
        .args(extra_args)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    // The banner read happens on a helper thread so the wait can be
    // bounded: a blocking read_line on the pipe itself has no deadline,
    // and a child that neither prints nor exits would hang the caller
    // forever.  (If the deadline fires, the detached thread unblocks as
    // soon as the killed child's pipe closes, then exits.)
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut banner = String::new();
        let result = BufReader::new(stdout)
            .read_line(&mut banner)
            .map(|_| banner);
        let _ = tx.send(result);
    });
    let banner = match rx.recv_timeout(BANNER_DEADLINE) {
        Ok(Ok(banner)) => banner,
        Ok(Err(e)) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(e);
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "worker printed no banner within {BANNER_DEADLINE:?}; \
                     killed and reaped"
                ),
            ));
        }
    };
    if banner.is_empty() {
        // EOF before any banner: the child exited (or closed stdout)
        // without ever serving — an un-bindable address, a bad flag, an
        // early crash.  Reap it and surface the exit status.
        let status = child.wait()?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("worker exited before printing its banner ({status})"),
        ));
    }
    let Some(bound) = banner.trim().strip_prefix("listening on ") else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected worker banner {banner:?}"),
        ));
    };
    Ok((child, bound.to_string()))
}

/// A fleet of listening `knw-worker --listen` processes, reaped on drop so
/// a panicking caller (a failing test, an aborted bench) leaves no
/// forever-serving strays behind.  The process-supervision counterpart of
/// [`spawn_listening_worker`], shared by the integration tests, the
/// benches, and any embedding supervisor.
pub struct ListeningWorkerFleet {
    children: Vec<Child>,
    addrs: Vec<String>,
}

impl ListeningWorkerFleet {
    /// Spawns `count` listening workers on `addr` (`127.0.0.1:0` picks a
    /// free localhost port per worker) and collects their bound
    /// addresses.  Already-spawned workers are reaped if a later spawn
    /// fails.
    ///
    /// # Errors
    ///
    /// The first spawn or banner-handshake failure.
    pub fn spawn(worker_exe: &Path, addr: &str, count: usize) -> std::io::Result<Self> {
        let mut fleet = Self {
            children: Vec::with_capacity(count),
            addrs: Vec::with_capacity(count),
        };
        for _ in 0..count {
            let (child, bound) = spawn_listening_worker(worker_exe, addr, &[])?;
            fleet.children.push(child);
            fleet.addrs.push(bound);
        }
        Ok(fleet)
    }

    /// The bound worker addresses, in shard order.
    #[must_use]
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Kills the worker *process* behind shard `index` — real fault
    /// injection, not a polite shutdown.
    ///
    /// # Errors
    ///
    /// The underlying `kill(2)` failure, if any.
    pub fn kill(&mut self, index: usize) -> std::io::Result<()> {
        self.children[index].kill()?;
        let _ = self.children[index].wait();
        Ok(())
    }
}

impl Drop for ListeningWorkerFleet {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

// --------------------------------------------------------------------- pipe

/// The single-box transport: spawn one `knw-worker` child process per
/// worker and speak frames over its stdin/stdout pipes.
#[derive(Debug, Clone)]
pub struct PipeTransport {
    worker_exe: PathBuf,
}

impl PipeTransport {
    /// Creates a pipe transport spawning the given worker executable.
    #[must_use]
    pub fn new(worker_exe: impl Into<PathBuf>) -> Self {
        Self {
            worker_exe: worker_exe.into(),
        }
    }

    /// The worker executable this transport spawns.
    #[must_use]
    pub fn worker_exe(&self) -> &Path {
        &self.worker_exe
    }
}

impl Transport for PipeTransport {
    fn open(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        let mut child = Command::new(&self.worker_exe)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| ClusterError::io(index, e))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        Ok(Box::new(PipeConnection {
            child,
            stdin: Some(BufWriter::new(stdin)),
            stdout: BufReader::new(stdout),
        }))
    }
}

/// A spawned `knw-worker` child on stdin/stdout pipes.
struct PipeConnection {
    child: Child,
    /// `None` once the pipe was half-closed (at `Finish`).
    stdin: Option<BufWriter<ChildStdin>>,
    stdout: BufReader<ChildStdout>,
}

impl WorkerConnection for PipeConnection {
    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        let Some(stdin) = self.stdin.as_mut() else {
            // Writing after close_send: the pipe is gone, same as a dead
            // child from the caller's perspective.
            return Err(WireError::Io(std::io::ErrorKind::BrokenPipe.into()));
        };
        write_frame(stdin, frame)?;
        stdin.flush()?;
        Ok(())
    }

    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let Some(stdin) = self.stdin.as_mut() else {
            return Err(WireError::Io(std::io::ErrorKind::BrokenPipe.into()));
        };
        stdin.write_all(bytes)?;
        stdin.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Frame>, WireError> {
        read_frame(&mut self.stdout)
    }

    fn close_send(&mut self) {
        drop(self.stdin.take());
    }

    fn kill(&mut self) -> std::io::Result<()> {
        drop(self.stdin.take());
        self.child.kill()
    }

    fn confirm_finished(&mut self) -> std::io::Result<bool> {
        Ok(self.child.wait()?.success())
    }
}

impl Drop for PipeConnection {
    /// Reaps the child so an abandoned (or failed) link leaves no orphan
    /// process behind.  A no-op for children already waited on.
    fn drop(&mut self) {
        drop(self.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------- tcp

/// Sizing and safety knobs of a TCP cluster run: the shared engine knobs
/// (shard count = worker count, batch size, routing policy,
/// pre-coalescing) plus the worker addresses and the transport timeouts.
///
/// The shard count always tracks the address list — one worker, one shard —
/// so a spec mismatch between the two cannot exist.
#[derive(Debug, Clone)]
pub struct TcpClusterConfig {
    /// Routing knobs, shared verbatim with the in-process engine.  The
    /// shard count is forced to `addrs.len()`.
    pub engine: knw_engine::EngineConfig,
    /// One `host:port` per worker, in shard order.
    pub addrs: Vec<String>,
    /// How long to wait for each worker to accept the connection.
    pub connect_timeout: Duration,
    /// Per-link read/write timeout (`None` blocks forever — not
    /// recommended; the default keeps every failure mode bounded).
    pub io_timeout: Option<Duration>,
    /// Reconnect-and-replay recovery for faulted workers (`None` — the
    /// default — keeps the pre-recovery behaviour: the first
    /// `WorkerDied`/`Timeout` fails the run).
    pub recovery: Option<RecoveryPolicy>,
    /// Worker-discovery registry the recovery path re-resolves lost
    /// workers through (spare `knw-worker --register` hosts); `None` limits
    /// recovery to reconnecting the static addresses.
    pub registry: Option<Arc<WorkerRegistry>>,
}

impl TcpClusterConfig {
    /// Creates a TCP cluster configuration for the given worker addresses
    /// (one shard per address) with default engine knobs and timeouts.
    #[must_use]
    pub fn new<A: Into<String>>(addrs: impl IntoIterator<Item = A>) -> Self {
        let addrs: Vec<String> = addrs.into_iter().map(Into::into).collect();
        Self {
            engine: knw_engine::EngineConfig::new(addrs.len()),
            addrs,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            recovery: None,
            registry: None,
        }
    }

    /// Replaces the engine knobs (batch size, routing, pre-coalescing).
    /// The shard count is re-forced to the address count.
    #[must_use]
    pub fn with_engine(mut self, engine: knw_engine::EngineConfig) -> Self {
        self.engine = engine.with_shards(self.addrs.len());
        self
    }

    /// Sets the connect timeout.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the per-link read/write timeout (`None` blocks forever).
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Enables reconnect-and-replay recovery with the given policy.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Attaches a worker-discovery registry: the recovery path pops
    /// registered replacement addresses when a worker's static address
    /// stays unreachable.
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<WorkerRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }
}

/// The multi-host transport: connect to already-running workers
/// (`knw-worker --listen <addr>`) over TCP.
///
/// Recovery re-resolution: [`reopen`](Transport::reopen) first re-dials the
/// worker's current address; if that stays unreachable and a
/// [`WorkerRegistry`] is attached, it pops registered replacement
/// addresses until one connects, and remembers the substitution so later
/// faults on the same worker dial the replacement directly.
#[derive(Debug)]
pub struct TcpTransport {
    addrs: Vec<String>,
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
    registry: Option<Arc<WorkerRegistry>>,
    /// Re-resolved replacement addresses, by worker index.
    overrides: Mutex<HashMap<usize, String>>,
}

impl TcpTransport {
    /// Creates a TCP transport for the given worker addresses and timeouts.
    #[must_use]
    pub fn new(config: &TcpClusterConfig) -> Self {
        Self {
            addrs: config.addrs.clone(),
            connect_timeout: config.connect_timeout,
            io_timeout: config.io_timeout,
            registry: config.registry.clone(),
            overrides: Mutex::new(HashMap::new()),
        }
    }

    /// The statically configured worker addresses, in shard order.
    #[must_use]
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The address worker `index` currently resolves to: its registered
    /// replacement if recovery re-resolved it (or a pool draw placed it
    /// there), the static address otherwise.  `None` for a grown index
    /// beyond the static list that has no pool assignment yet.
    #[must_use]
    pub fn current_addr(&self, index: usize) -> Option<String> {
        self.overrides
            .lock()
            .expect("transport overrides lock")
            .get(&index)
            .cloned()
            .or_else(|| self.addrs.get(index).cloned())
    }

    /// Draws a probed-healthy address from the attached registry pool,
    /// assigns it to `index`, and connects — the placement path shared by
    /// [`open`](Transport::open) on grown indices and
    /// [`reopen`](Transport::reopen)'s re-resolution fallback.  Returns
    /// `None` when no attached registry can supply a live address.
    fn open_from_pool(&self, index: usize) -> Option<Box<dyn WorkerConnection>> {
        let registry = self.registry.as_ref()?;
        while let Some(addr) = registry.take_address() {
            if !probe_worker(
                &addr,
                self.connect_timeout,
                self.io_timeout.unwrap_or(DEFAULT_IO_TIMEOUT),
            ) {
                continue;
            }
            match open_tcp_link(index, &addr, self.connect_timeout, self.io_timeout) {
                Ok(conn) => {
                    self.overrides
                        .lock()
                        .expect("transport overrides lock")
                        .insert(index, addr);
                    return Some(conn);
                }
                Err(_) => continue,
            }
        }
        None
    }
}

impl Transport for TcpTransport {
    fn open(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        match self.current_addr(index) {
            Some(addr) => open_tcp_link(index, &addr, self.connect_timeout, self.io_timeout),
            // A grown index beyond the static list: the pool is the only
            // possible placement.
            None => self
                .open_from_pool(index)
                .ok_or(ClusterError::PoolExhausted { needed: 1, live: 0 }),
        }
    }

    fn reopen(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        // First choice: the address the worker last answered on (a
        // supervisor may have restarted it in place).
        let static_error = match self.open(index) {
            Ok(conn) => return Ok(conn),
            Err(e) => e,
        };
        // Fallback: pop registered replacements until one *answers a
        // liveness probe* and connects.  Unreachable or unresponsive pops
        // are discarded — a stale announcement, or a spare whose listen
        // backlog still accepts for a dead serve loop, must not burn a
        // bounded recovery attempt on a doomed replay.
        self.open_from_pool(index).ok_or(static_error)
    }

    fn retire(&self, index: usize) {
        // Expire the override — the index no longer exists, so a later
        // grow must not inherit a stale substitution — and hand the
        // still-serving worker's address back to the pool for re-adoption.
        let expired = self
            .overrides
            .lock()
            .expect("transport overrides lock")
            .remove(&index);
        if let Some(registry) = &self.registry {
            if let Some(addr) = expired.or_else(|| self.addrs.get(index).cloned()) {
                registry.return_address(addr);
            }
        }
    }
}

// --------------------------------------------------------------------- pool

/// The placement transport: **no static address list at all** — every
/// worker slot is filled by drawing a probed-healthy address from a
/// [`WorkerRegistry`] pool of `knw-worker --listen --register` spares.
///
/// Opening worker `index` pops pool addresses until one passes the
/// connect-and-greet liveness probe ([`probe_worker`]) and connects, then
/// remembers the assignment; [`reopen`](Transport::reopen) re-dials the
/// assigned address first (a supervisor may have restarted the process in
/// place) and falls back to a fresh draw.  [`retire`](Transport::retire)
/// — a scale-down removed the slot — forgets the assignment and returns
/// the address to the pool, so a later grow can re-adopt the
/// still-serving worker.
#[derive(Debug)]
pub struct PoolTransport {
    registry: Arc<WorkerRegistry>,
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
    /// Pool addresses by the worker index they were placed on.
    assigned: Mutex<HashMap<usize, String>>,
}

impl PoolTransport {
    /// Creates a pool transport drawing from `registry` with the default
    /// timeouts.
    #[must_use]
    pub fn new(registry: Arc<WorkerRegistry>) -> Self {
        Self {
            registry,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            assigned: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the connect timeout.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the per-link read/write timeout (`None` blocks forever).
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// The registry this transport draws placements from.
    #[must_use]
    pub fn registry(&self) -> &Arc<WorkerRegistry> {
        &self.registry
    }

    /// The pool address currently placed on worker `index`, if any.
    #[must_use]
    pub fn assigned_addr(&self, index: usize) -> Option<String> {
        self.assigned
            .lock()
            .expect("pool assignments lock")
            .get(&index)
            .cloned()
    }

    /// Draws probed-healthy pool addresses until one connects, recording
    /// the assignment.
    fn draw(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        while let Some(addr) = self.registry.take_address() {
            if !probe_worker(
                &addr,
                self.connect_timeout,
                self.io_timeout.unwrap_or(DEFAULT_IO_TIMEOUT),
            ) {
                continue;
            }
            match open_tcp_link(index, &addr, self.connect_timeout, self.io_timeout) {
                Ok(conn) => {
                    self.assigned
                        .lock()
                        .expect("pool assignments lock")
                        .insert(index, addr);
                    return Ok(conn);
                }
                Err(_) => continue,
            }
        }
        Err(ClusterError::PoolExhausted {
            needed: 1,
            live: self.registry.live_available(),
        })
    }
}

impl Transport for PoolTransport {
    fn open(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        match self.assigned_addr(index) {
            Some(addr) => open_tcp_link(index, &addr, self.connect_timeout, self.io_timeout),
            None => self.draw(index),
        }
    }

    fn reopen(&self, index: usize) -> Result<Box<dyn WorkerConnection>, ClusterError> {
        if let Some(addr) = self.assigned_addr(index) {
            match open_tcp_link(index, &addr, self.connect_timeout, self.io_timeout) {
                Ok(conn) => return Ok(conn),
                Err(_) => {
                    // The placed worker is gone for good; forget it before
                    // drawing a replacement.
                    self.assigned
                        .lock()
                        .expect("pool assignments lock")
                        .remove(&index);
                }
            }
        }
        self.draw(index)
    }

    fn retire(&self, index: usize) {
        if let Some(addr) = self
            .assigned
            .lock()
            .expect("pool assignments lock")
            .remove(&index)
        {
            self.registry.return_address(addr);
        }
    }
}

/// One framed TCP link to a listening worker.
struct TcpConnection {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    write_open: bool,
}

impl WorkerConnection for TcpConnection {
    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        if !self.write_open {
            return Err(WireError::Io(std::io::ErrorKind::BrokenPipe.into()));
        }
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if !self.write_open {
            return Err(WireError::Io(std::io::ErrorKind::BrokenPipe.into()));
        }
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Option<Frame>, WireError> {
        read_frame(&mut self.reader)
    }

    fn close_send(&mut self) {
        if self.write_open {
            self.write_open = false;
            let _ = self.writer.flush();
            let _ = self.writer.get_ref().shutdown(Shutdown::Write);
        }
    }

    fn kill(&mut self) -> std::io::Result<()> {
        self.write_open = false;
        self.writer.get_ref().shutdown(Shutdown::Both)
    }

    fn confirm_finished(&mut self) -> std::io::Result<bool> {
        // A finishing worker sends its Shard and closes the connection (it
        // may keep serving *other* sessions); clean EOF is the handshake.
        match read_frame(&mut self.reader) {
            Ok(None) => Ok(true),
            Ok(Some(_)) => Ok(false),
            Err(WireError::Truncated) => Ok(false),
            Err(WireError::Io(e)) => Err(e),
            Err(_) => Ok(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn connect_failure_is_typed_and_names_the_address() {
        // Bind-then-drop guarantees a port with no listener.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let config =
            TcpClusterConfig::new([addr.clone()]).with_connect_timeout(Duration::from_millis(500));
        let transport = TcpTransport::new(&config);
        match transport.open(0).map(|_| "a connection") {
            Err(ClusterError::ConnectFailed {
                worker,
                addr: failed,
                ..
            }) => {
                assert_eq!(worker, 0);
                assert_eq!(failed, addr);
            }
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn unresolvable_address_is_a_connect_failure() {
        let config = TcpClusterConfig::new(["not an address"]);
        match TcpTransport::new(&config).open(0).map(|_| "a connection") {
            Err(ClusterError::ConnectFailed { worker: 0, .. }) => {}
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }

    #[test]
    fn tcp_config_keeps_shards_locked_to_the_address_count() {
        let config = TcpClusterConfig::new(["a:1", "b:2", "c:3"])
            .with_engine(knw_engine::EngineConfig::new(16));
        assert_eq!(config.engine.shards, 3);
        assert_eq!(config.addrs.len(), 3);
    }

    #[test]
    fn tcp_round_trip_over_a_local_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = BufWriter::new(stream);
            let frame = read_frame(&mut reader).expect("read").expect("frame");
            write_frame(&mut writer, &frame).expect("write");
            writer.flush().expect("flush");
        });
        let config = TcpClusterConfig::new([addr]);
        let mut conn = TcpTransport::new(&config).open(0).expect("connect");
        conn.send(&Frame::Snapshot).expect("send");
        let back = conn.recv().expect("recv").expect("one frame");
        assert_eq!(back, Frame::Snapshot);
        echo.join().expect("echo thread");
        // The peer closed after echoing: a clean shutdown from our side.
        assert!(conn.confirm_finished().expect("confirm"));
    }
}
