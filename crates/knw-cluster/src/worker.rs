//! The worker side of the cluster protocol: one process, one shard sketch
//! per session.
//!
//! [`run_worker`] is transport-agnostic (any `Read`/`Write` pair), so the
//! same loop serves the `knw-worker` binary in both of its modes —
//! stdin/stdout pipes when spawned by an aggregator, a TCP serve loop
//! ([`serve`]) under `knw-worker --listen <addr>` — as well as Unix
//! sockets and in-process tests over byte buffers.  The loop is a strict
//! little state machine:
//!
//! ```text
//! wait Hello ──► ingest loop:  Restore   → adopt checkpointed shard bytes
//!                                          (recovery replay prologue;
//!                                          only before the first Batch)
//!                              Batch     → apply to the shard sketch
//!                              Snapshot  → reply Shard{bytes}, keep going
//!                              Finish    → reply Shard{bytes}, exit Ok
//!                              clean EOF → exit Ok (aggregator went away)
//! ```
//!
//! Every failure — codec rejection, protocol violation, unknown estimator,
//! stream-model mismatch — is reported to the aggregator as an `Err` frame
//! (best effort) *and* returned to the caller, so the binary exits nonzero
//! and process supervisors see the crash.

use crate::frame::{
    read_frame, read_frame_into, write_frame, BatchPayload, Frame, FrameBuf, FrameView, SketchSpec,
    StreamMode, WireError, WorkerStats,
};
use crate::spec::{build_f0, build_l0, f0_shard_from_bytes, l0_shard_from_bytes};
use crate::spec::{WireF0Sketch, WireL0Sketch};
use knw_metrics::knw_log;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// The worker's shard sketch, in whichever stream model the spec named.
enum ShardState {
    F0(Box<dyn WireF0Sketch>),
    L0(Box<dyn WireL0Sketch>),
}

impl ShardState {
    fn apply(&mut self, payload: &BatchPayload) -> Result<(), String> {
        match payload {
            BatchPayload::Items(items) => self.apply_items(items),
            BatchPayload::Updates(updates) => self.apply_updates(updates),
        }
    }

    fn apply_items(&mut self, items: &[u64]) -> Result<(), String> {
        match self {
            ShardState::F0(sketch) => {
                sketch.insert_batch(items);
                Ok(())
            }
            ShardState::L0(_) => {
                Err("stream-model mismatch: insert-only batch sent to an L0 worker".into())
            }
        }
    }

    fn apply_updates(&mut self, updates: &[(u64, i64)]) -> Result<(), String> {
        match self {
            ShardState::L0(sketch) => {
                sketch.update_batch(updates);
                Ok(())
            }
            ShardState::F0(_) => {
                Err("stream-model mismatch: turnstile batch sent to an F0 worker".into())
            }
        }
    }

    fn wire_bytes(&self) -> Vec<u8> {
        match self {
            ShardState::F0(sketch) => sketch.wire_bytes(),
            ShardState::L0(sketch) => sketch.wire_bytes(),
        }
    }

    /// Adopts a checkpointed shard (the recovery replay prologue): the
    /// bytes are decoded against `spec` in this state's stream model and
    /// *replace* the current sketch.
    fn restore(&mut self, spec: &SketchSpec, bytes: &[u8]) -> Result<(), String> {
        match self {
            ShardState::F0(sketch) => {
                *sketch = f0_shard_from_bytes(spec, bytes)
                    .map_err(|e| format!("restore rejected: {e}"))?;
            }
            ShardState::L0(sketch) => {
                *sketch = l0_shard_from_bytes(spec, bytes)
                    .map_err(|e| format!("restore rejected: {e}"))?;
            }
        }
        Ok(())
    }
}

/// Sends an `Err` frame best-effort (the pipe may already be gone) and
/// returns the message as the loop's error.
fn report(output: &mut impl Write, message: String) -> Result<(), String> {
    let _ = write_frame(output, &Frame::Err(message.clone()));
    let _ = output.flush();
    Err(message)
}

/// Runs the worker protocol loop to completion over the given transport.
///
/// The session's ingest counters are reported back to the aggregator as a
/// [`Frame::Stats`] immediately before the final shard, and mirrored into
/// the process-wide metrics registry (`knw_worker_*` counters) on every
/// exit path, so a long-lived `--listen` worker accumulates fleet-visible
/// totals across sessions.
///
/// # Errors
///
/// Returns the failure message (already sent to the aggregator as an `Err`
/// frame where the transport still worked): transport/codec failures,
/// protocol violations, unknown estimator names, stream-model mismatches.
pub fn run_worker(input: &mut impl Read, output: &mut impl Write) -> Result<(), String> {
    let mut stats = WorkerStats::default();
    let result = run_session(input, output, &mut stats);
    mirror_stats(&stats);
    result
}

/// Adds a finished session's counters to the process-wide registry.  The
/// hot path only touches plain `u64` locals; this one batch of atomic adds
/// per session is the entire registry cost of the ingest loop.
fn mirror_stats(stats: &WorkerStats) {
    let registry = knw_metrics::global();
    let pairs = [
        ("knw_worker_frames_received_total", stats.frames_received),
        ("knw_worker_batches_ingested_total", stats.batches_ingested),
        ("knw_worker_updates_ingested_total", stats.updates_ingested),
        ("knw_worker_snapshots_served_total", stats.snapshots_served),
    ];
    for (name, value) in pairs {
        registry.counter(name, &[]).add(value);
    }
}

fn run_session(
    input: &mut impl Read,
    output: &mut impl Write,
    stats: &mut WorkerStats,
) -> Result<(), String> {
    // Handshake.
    let hello = match read_frame(input) {
        Ok(Some(Frame::Hello(hello))) => hello,
        Ok(Some(other)) => {
            return report(
                output,
                format!("protocol violation: expected Hello, got {}", other.kind()),
            )
        }
        // The aggregator vanished before saying anything; nothing to do.
        Ok(None) => return Ok(()),
        Err(e) => return report(output, format!("handshake failed: {e}")),
    };
    let spec = hello.spec;
    let mut state = match spec.mode {
        StreamMode::F0 => match build_f0(&spec) {
            Ok(sketch) => ShardState::F0(sketch),
            Err(e) => return report(output, e.to_string()),
        },
        StreamMode::L0 => match build_l0(&spec) {
            Ok(sketch) => ShardState::L0(sketch),
            Err(e) => return report(output, e.to_string()),
        },
    };

    // Ingest loop.  Batches — the hot path — are decoded through the
    // borrowed reader into one retained scratch, so a long stream performs
    // no per-frame allocation on the worker side; control frames arrive as
    // owned values exactly as before.
    let mut buf = FrameBuf::new();
    let mut ingested = false;
    loop {
        let view = match read_frame_into(input, &mut buf) {
            Ok(Some(view)) => view,
            // Clean EOF without Finish: the aggregator was dropped without
            // reporting; mirror the in-process engine (workers shut down
            // quietly when the router goes away).
            Ok(None) => return Ok(()),
            Err(WireError::Io(e)) => return Err(format!("transport failed: {e}")),
            Err(e) => return report(output, format!("bad frame: {e}")),
        };
        stats.frames_received += 1;
        match view {
            FrameView::Items(items) => {
                ingested = true;
                stats.batches_ingested += 1;
                stats.updates_ingested += items.len() as u64;
                if let Err(message) = state.apply_items(items) {
                    return report(output, message);
                }
            }
            FrameView::Updates(updates) => {
                ingested = true;
                stats.batches_ingested += 1;
                stats.updates_ingested += updates.len() as u64;
                if let Err(message) = state.apply_updates(updates) {
                    return report(output, message);
                }
            }
            FrameView::Owned(Frame::Batch(payload)) => {
                ingested = true;
                stats.batches_ingested += 1;
                stats.updates_ingested += match &payload {
                    BatchPayload::Items(items) => items.len() as u64,
                    BatchPayload::Updates(updates) => updates.len() as u64,
                };
                if let Err(message) = state.apply(&payload) {
                    return report(output, message);
                }
            }
            FrameView::Owned(Frame::Restore(bytes)) => {
                // The recovery prologue: only valid on a fresh session —
                // replacing state that already absorbed batches would
                // silently drop them.
                if ingested {
                    return report(
                        output,
                        "protocol violation: Restore after a Batch".to_string(),
                    );
                }
                if let Err(message) = state.restore(&spec, &bytes) {
                    return report(output, message);
                }
            }
            FrameView::Owned(Frame::Snapshot) => {
                stats.snapshots_served += 1;
                if let Err(e) = send_shard(output, &state) {
                    return Err(format!("failed to send snapshot shard: {e}"));
                }
            }
            FrameView::Owned(Frame::Finish) => {
                // The session's counters ride back to the aggregator just
                // ahead of the final shard, so fleet-wide health rolls up
                // without a second round trip.
                if let Err(e) = write_frame(output, &Frame::Stats(*stats)) {
                    return Err(format!("failed to send session stats: {e}"));
                }
                return send_shard(output, &state)
                    .map_err(|e| format!("failed to send final shard: {e}"));
            }
            FrameView::Owned(other) => {
                return report(
                    output,
                    format!(
                        "protocol violation: unexpected {} frame midstream",
                        other.kind()
                    ),
                );
            }
        }
    }
}

fn send_shard(output: &mut impl Write, state: &ShardState) -> Result<(), WireError> {
    write_frame(output, &Frame::Shard(state.wire_bytes()))?;
    output.flush()?;
    Ok(())
}

/// Knobs of the TCP serve loop ([`serve`]).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Stop after this many sessions (`None` serves forever) — handy for
    /// tests and demos that want the worker to wind itself down.
    pub max_sessions: Option<usize>,
    /// Per-connection read/write timeout.  Bounded by default
    /// ([`DEFAULT_IO_TIMEOUT`](crate::DEFAULT_IO_TIMEOUT)): the serve loop
    /// handles sessions sequentially, so a half-open aggregator that never
    /// sends another byte must surface as a session error instead of
    /// wedging the worker (and everything queued behind it) forever.
    /// `None` blocks forever — only for aggregators that legitimately go
    /// quiet for long stretches.
    pub io_timeout: Option<Duration>,
    /// How many *consecutive* `accept(2)` failures the serve loop absorbs
    /// (logged, with a short growing backoff) before concluding the
    /// listener itself is broken and returning the error.  Transient
    /// conditions — `ECONNABORTED` from a client that vanished in the
    /// backlog, `EMFILE`/`ENFILE` pressure that clears when sessions close
    /// — must not take a shared worker host down.
    pub max_accept_retries: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_sessions: None,
            io_timeout: Some(crate::transport::DEFAULT_IO_TIMEOUT),
            max_accept_retries: DEFAULT_MAX_ACCEPT_RETRIES,
        }
    }
}

/// Default bound on consecutive `accept(2)` failures
/// ([`ServeOptions::max_accept_retries`]).
pub const DEFAULT_MAX_ACCEPT_RETRIES: usize = 8;

/// Base backoff after a failed `accept(2)` (the `k`-th consecutive failure
/// sleeps `k ×` this), giving descriptor-pressure conditions room to clear.
const ACCEPT_RETRY_BACKOFF: Duration = Duration::from_millis(20);

impl ServeOptions {
    /// Limits the loop to `sessions` aggregation sessions.
    #[must_use]
    pub fn with_max_sessions(mut self, sessions: usize) -> Self {
        self.max_sessions = Some(sessions);
        self
    }

    /// Sets the per-connection read/write timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }
}

/// Runs one aggregation session ([`run_worker`]) over an accepted TCP
/// stream: buffered both ways, `TCP_NODELAY` on, optional read/write
/// timeouts.
///
/// # Errors
///
/// The session's failure message (protocol violation, codec rejection,
/// transport failure), exactly as [`run_worker`] reports it.
pub fn serve_connection(stream: &TcpStream, io_timeout: Option<Duration>) -> Result<(), String> {
    let _ = stream.set_nodelay(true);
    let configure = || -> std::io::Result<(TcpStream, TcpStream)> {
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Ok((stream.try_clone()?, stream.try_clone()?))
    };
    let (reader, writer) = configure().map_err(|e| format!("socket setup failed: {e}"))?;
    let mut input = BufReader::new(reader);
    let mut output = BufWriter::new(writer);
    run_worker(&mut input, &mut output)
}

/// The TCP serve loop behind `knw-worker --listen <addr>`: accepts
/// connections on `listener` and runs one aggregation session
/// ([`run_worker`]) per connection, sequentially.
///
/// A failed session does **not** stop the loop: the failure was already
/// reported to that session's aggregator as an `Err` frame (best effort)
/// and is logged to stderr here; a misbehaving client must not take a
/// shared worker host down.  Neither does a transient `accept(2)` failure
/// (`ECONNABORTED`, `EMFILE`, …): it is logged and retried with a short
/// growing backoff, up to [`ServeOptions::max_accept_retries`]
/// *consecutive* failures.  The loop ends after
/// [`ServeOptions::max_sessions`] sessions, or never.
///
/// # Errors
///
/// A persistent `accept(2)` failure — `max_accept_retries + 1` consecutive
/// accepts failed, so the listener itself is broken.
pub fn serve(listener: &TcpListener, options: &ServeOptions) -> std::io::Result<()> {
    serve_accepting(|| listener.accept(), options)
}

/// The accept-source-generic serve loop behind [`serve`]; split out so the
/// accept-failure path is testable without provoking real `EMFILE`.
fn serve_accepting(
    mut accept: impl FnMut() -> std::io::Result<(TcpStream, SocketAddr)>,
    options: &ServeOptions,
) -> std::io::Result<()> {
    let registry = knw_metrics::global();
    let sessions = registry.counter("knw_worker_sessions_total", &[]);
    let failed = registry.counter("knw_worker_sessions_failed_total", &[]);
    let accept_retries = registry.counter("knw_worker_accept_retries_total", &[]);
    let mut served = 0usize;
    let mut consecutive_failures = 0usize;
    while options.max_sessions.is_none_or(|max| served < max) {
        let (stream, peer) = match accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                consecutive_failures += 1;
                accept_retries.inc();
                if consecutive_failures > options.max_accept_retries {
                    return Err(e);
                }
                knw_log!(
                    WARN,
                    "knw-worker",
                    "accept failed; retrying",
                    error = e,
                    retry = consecutive_failures,
                    max_retries = options.max_accept_retries,
                );
                std::thread::sleep(ACCEPT_RETRY_BACKOFF * consecutive_failures as u32);
                continue;
            }
        };
        consecutive_failures = 0;
        if let Err(message) = serve_connection(&stream, options.io_timeout) {
            // `message` can embed raw peer-supplied bytes (codec errors
            // quote the offending frame); the structured logger escapes the
            // value so a hostile client cannot forge log records.
            failed.inc();
            knw_log!(
                WARN,
                "knw-worker",
                "session failed",
                peer = peer,
                error = message,
            );
        }
        sessions.inc();
        served += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{HelloConfig, SketchSpec};
    use crate::spec::build_f0;

    fn hello(spec: SketchSpec) -> Frame {
        Frame::Hello(HelloConfig {
            worker_index: 0,
            spec,
        })
    }

    fn script(frames: &[Frame]) -> Vec<u8> {
        let mut wire = Vec::new();
        for frame in frames {
            write_frame(&mut wire, frame).expect("write");
        }
        wire
    }

    fn run(input: &[u8]) -> (Result<(), String>, Vec<Frame>) {
        let mut reader = input;
        let mut output = Vec::new();
        let result = run_worker(&mut reader, &mut output);
        let mut replies = Vec::new();
        let mut cursor = output.as_slice();
        while let Some(frame) = read_frame(&mut cursor).expect("well-formed replies") {
            replies.push(frame);
        }
        (result, replies)
    }

    #[test]
    fn full_conversation_yields_the_correct_shard() {
        let spec = SketchSpec::f0("knw-f0", 0.1, 1 << 16, 5);
        let wire = script(&[
            hello(spec.clone()),
            Frame::Batch(BatchPayload::Items((0..500).collect())),
            Frame::Snapshot,
            Frame::Batch(BatchPayload::Items((500..900).collect())),
            Frame::Finish,
        ]);
        let (result, replies) = run(&wire);
        result.expect("clean run");
        assert_eq!(
            replies.len(),
            3,
            "one snapshot + the session stats + one final shard"
        );
        // The session counters ride just ahead of the final shard: two
        // batches of 500 + 400 updates, one snapshot served, and four
        // frames total after the handshake.
        assert_eq!(
            replies[1],
            Frame::Stats(WorkerStats {
                frames_received: 4,
                batches_ingested: 2,
                updates_ingested: 900,
                snapshots_served: 1,
            })
        );
        // The final shard must decode to the sketch a local run produces.
        let Frame::Shard(bytes) = &replies[2] else {
            panic!("expected Shard, got {}", replies[2].kind());
        };
        let wired = crate::spec::f0_shard_from_bytes(&spec, bytes).expect("decodes");
        let mut local = build_f0(&spec).expect("builds");
        local.insert_batch(&(0..900).collect::<Vec<_>>());
        assert_eq!(wired.estimate(), local.estimate());
    }

    #[test]
    fn mode_mismatch_is_reported_as_an_err_frame() {
        let wire = script(&[
            hello(SketchSpec::f0("knw-f0", 0.1, 1 << 16, 5)),
            Frame::Batch(BatchPayload::Updates(vec![(1, 1)])),
        ]);
        let (result, replies) = run(&wire);
        assert!(result.is_err());
        assert!(matches!(replies.as_slice(), [Frame::Err(m)] if m.contains("mismatch")));
    }

    #[test]
    fn unknown_estimator_is_reported_as_an_err_frame() {
        let wire = script(&[hello(SketchSpec::f0("bogus", 0.1, 1 << 16, 5))]);
        let (result, replies) = run(&wire);
        assert!(result.is_err());
        assert!(matches!(replies.as_slice(), [Frame::Err(m)] if m.contains("bogus")));
    }

    #[test]
    fn missing_hello_is_a_protocol_violation() {
        let wire = script(&[Frame::Snapshot]);
        let (result, replies) = run(&wire);
        assert!(result.is_err());
        assert!(matches!(replies.as_slice(), [Frame::Err(m)] if m.contains("expected Hello")));
    }

    #[test]
    fn clean_eof_before_finish_is_a_quiet_shutdown() {
        let wire = script(&[
            hello(SketchSpec::l0("knw-l0", 0.2, 1 << 12, 9)),
            Frame::Batch(BatchPayload::Updates(vec![(1, 1), (2, 3)])),
        ]);
        let (result, replies) = run(&wire);
        result.expect("quiet shutdown");
        assert!(replies.is_empty());
    }

    #[test]
    fn restore_then_replay_reproduces_the_checkpointed_fold() {
        // Build the "checkpoint": a local sketch over the first half of a
        // stream, serialized exactly as a Shard frame would carry it.
        let spec = SketchSpec::f0("knw-f0", 0.1, 1 << 16, 5);
        let mut checkpointed = build_f0(&spec).expect("builds");
        checkpointed.insert_batch(&(0..400).collect::<Vec<_>>());
        let checkpoint = checkpointed.wire_bytes();

        // A recovered session: Hello, Restore{checkpoint}, the second half
        // of the stream, Finish.
        let wire = script(&[
            hello(spec.clone()),
            Frame::Restore(checkpoint),
            Frame::Batch(BatchPayload::Items((400..900).collect())),
            Frame::Finish,
        ]);
        let (result, replies) = run(&wire);
        result.expect("clean recovered session");
        let Frame::Shard(bytes) = &replies[1] else {
            panic!("expected Shard, got {}", replies[1].kind());
        };
        let restored = crate::spec::f0_shard_from_bytes(&spec, bytes).expect("decodes");
        let mut local = build_f0(&spec).expect("builds");
        local.insert_batch(&(0..900).collect::<Vec<_>>());
        assert_eq!(restored.estimate().to_bits(), local.estimate().to_bits());
    }

    #[test]
    fn restore_after_a_batch_is_a_protocol_violation() {
        let spec = SketchSpec::f0("knw-f0", 0.1, 1 << 16, 5);
        let checkpoint = build_f0(&spec).expect("builds").wire_bytes();
        let wire = script(&[
            hello(spec),
            Frame::Batch(BatchPayload::Items(vec![1, 2, 3])),
            Frame::Restore(checkpoint),
        ]);
        let (result, replies) = run(&wire);
        assert!(result.is_err());
        assert!(
            matches!(replies.as_slice(), [Frame::Err(m)] if m.contains("Restore after a Batch"))
        );
    }

    #[test]
    fn corrupt_restore_bytes_are_reported_not_panicked() {
        let wire = script(&[
            hello(SketchSpec::l0("knw-l0", 0.2, 1 << 12, 9)),
            Frame::Restore(vec![0xFF; 7]),
        ]);
        let (result, replies) = run(&wire);
        assert!(result.is_err());
        assert!(matches!(replies.as_slice(), [Frame::Err(m)] if m.contains("restore rejected")));
    }

    #[test]
    fn serve_loop_survives_transient_accept_failures() {
        use std::net::TcpListener;
        // One injected ECONNABORTED (a backlog client that vanished), then
        // real accepts: the loop must log-and-retry, and the later, real
        // session must still complete.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone"));
            let wire = script(&[
                hello(SketchSpec::f0("exact", 0.1, 1 << 12, 3)),
                Frame::Batch(BatchPayload::Items(vec![1, 2, 3])),
                Frame::Finish,
            ]);
            writer.write_all(&wire).expect("write session");
            writer.flush().expect("flush");
            let mut reader = std::io::BufReader::new(stream);
            let stats = read_frame(&mut reader).expect("reply").expect("the stats");
            assert!(matches!(stats, Frame::Stats(_)), "got {}", stats.kind());
            read_frame(&mut reader).expect("reply").expect("one Shard")
        });
        let mut injected = false;
        let options = ServeOptions::default().with_max_sessions(1);
        serve_accepting(
            || {
                if !injected {
                    injected = true;
                    return Err(std::io::Error::from(std::io::ErrorKind::ConnectionAborted));
                }
                listener.accept()
            },
            &options,
        )
        .expect("the loop must survive a transient accept failure");
        let reply = client.join().expect("client thread");
        assert!(matches!(reply, Frame::Shard(_)), "got {}", reply.kind());
    }

    #[test]
    fn persistent_accept_failures_end_the_loop_with_the_error() {
        let options = ServeOptions {
            max_sessions: None,
            io_timeout: None,
            max_accept_retries: 2,
        };
        let mut attempts = 0usize;
        let result = serve_accepting(
            || {
                attempts += 1;
                Err(std::io::Error::other("listener broke"))
            },
            &options,
        );
        assert!(result.is_err());
        // max_accept_retries consecutive retries, then the final failure.
        assert_eq!(attempts, 3);
    }

    #[test]
    fn corrupt_frame_midstream_is_reported_not_panicked() {
        let mut wire = script(&[hello(SketchSpec::f0("exact", 0.1, 1 << 16, 5))]);
        wire.extend_from_slice(&[3, 0, 0, 0, 0xFF, 0xFF, 0xFF]); // garbage frame
        let (result, replies) = run(&wire);
        assert!(result.is_err());
        assert!(matches!(replies.as_slice(), [Frame::Err(m)] if m.contains("bad frame")));
    }
}
