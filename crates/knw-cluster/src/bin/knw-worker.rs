//! The shard worker process: speaks the `knw-cluster` frame protocol on
//! stdin/stdout (see `knw_cluster::frame`), holding one shard sketch.
//!
//! Spawned by the aggregator (`knw_cluster::ClusterAggregator` or the
//! `knw-aggregate` demo binary); not intended for interactive use.  Exits
//! 0 on a clean `Finish` (or aggregator EOF), nonzero after reporting an
//! `Err` frame.

use std::io::{stdin, stdout, BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input = BufReader::new(stdin().lock());
    let mut output = BufWriter::new(stdout().lock());
    match knw_cluster::run_worker(&mut input, &mut output) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("knw-worker: {message}");
            ExitCode::FAILURE
        }
    }
}
