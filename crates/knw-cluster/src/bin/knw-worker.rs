//! The shard worker process: speaks the `knw-cluster` frame protocol (see
//! `knw_cluster::frame`), holding one shard sketch per aggregation session.
//!
//! Two modes:
//!
//! * **Pipe** (no flags): one session on stdin/stdout.  Spawned by the
//!   aggregator (`knw_cluster::ClusterAggregator::spawn` or the
//!   `knw-aggregate` demo binary); not intended for interactive use.
//!   Exits 0 on a clean `Finish` (or aggregator EOF), nonzero after
//!   reporting an `Err` frame.
//! * **Listen** (`--listen <addr>`): a TCP serve loop.  Binds the address
//!   (port 0 picks a free port), prints `listening on <addr>` on stdout so
//!   supervisors and tests can discover the bound port, then serves one
//!   aggregation session per accepted connection, sequentially, forever —
//!   or for `--sessions N` sessions (`--once` = `--sessions 1`).  A failed
//!   session is reported to its aggregator and logged, and the loop keeps
//!   serving; transient `accept(2)` failures are retried with backoff;
//!   `--io-timeout SECS` bounds how long a session may stall on a
//!   half-open peer.  Aggregators reach listening workers with
//!   `ClusterAggregator::connect_workers` / `knw-aggregate --transport tcp`.
//!   With `--register ADDR` the worker additionally announces its bound
//!   address to the worker registry at `ADDR`
//!   (`knw_cluster::WorkerRegistry`), volunteering as a recovery spare: a
//!   `--recover`ing aggregator that loses a worker re-resolves the lost
//!   shard onto the next registered spare and replays its journal there.

use knw_cluster::ServeOptions;
use knw_metrics::knw_log;
use std::io::{stdin, stdout, BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

struct Options {
    listen: Option<String>,
    register: Option<String>,
    serve: ServeOptions,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        listen: None,
        register: None,
        serve: ServeOptions::default(),
    };
    let mut serve_flag = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--listen" => opts.listen = Some(value("--listen")?),
            "--register" => opts.register = Some(value("--register")?),
            "--once" => {
                serve_flag = Some("--once");
                opts.serve.max_sessions = Some(1);
            }
            "--sessions" => {
                serve_flag = Some("--sessions");
                opts.serve.max_sessions =
                    Some(value("--sessions")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--io-timeout" => {
                serve_flag = Some("--io-timeout");
                let secs: u64 = value("--io-timeout")?.parse().map_err(|e| format!("{e}"))?;
                // 0 = no timeout (a zero Duration would be rejected by
                // set_read_timeout and fail every session).
                opts.serve.io_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--help" | "-h" => {
                println!(
                    "usage: knw-worker                      one session on stdin/stdout (pipe mode)\n\
                     \u{20}      knw-worker --listen ADDR     TCP serve loop (one session per connection)\n\
                     \u{20}        [--once | --sessions N]    stop after 1 / N sessions (default: forever)\n\
                     \u{20}        [--io-timeout SECS]        per-connection read/write timeout\n\
                     \u{20}                                   (default 30; 0 = none)\n\
                     \u{20}        [--register ADDR]          announce the bound address to an\n\
                     \u{20}                                   aggregator's worker registry (recovery\n\
                     \u{20}                                   re-resolves lost workers onto this one)\n\
                     Prints `listening on <addr>` once bound; port 0 picks a free port."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // The serve knobs belong to listen mode; in pipe mode they would be
    // silently dropped, which reads like a hang — reject instead.
    if opts.listen.is_none() {
        if let Some(flag) = serve_flag {
            return Err(format!("{flag} is only meaningful with --listen ADDR"));
        }
        if opts.register.is_some() {
            return Err("--register is only meaningful with --listen ADDR".into());
        }
    }
    Ok(opts)
}

fn listen(addr: &str, register: Option<&str>, serve: &ServeOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    // Announce the bound address (meaningful with port 0) so whoever
    // started us knows where to point the aggregator.
    println!("listening on {bound}");
    stdout().flush()?;
    // The --register handshake: announce the bound address to the
    // aggregator side's WorkerRegistry, so a recovering aggregator can
    // re-resolve a lost worker onto this one.  An unreachable registry is
    // fatal — a spare that silently failed to register would never be
    // found, which reads like a hang on the aggregator side.
    if let Some(registry) = register {
        knw_cluster::register_worker(registry, &bound.to_string())?;
    }
    knw_cluster::serve(&listener, serve)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            knw_log!(ERROR, "knw-worker", "invalid arguments", error = message);
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = &opts.listen {
        return match listen(addr, opts.register.as_deref(), &opts.serve) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                knw_log!(
                    ERROR,
                    "knw-worker",
                    "listener failed",
                    addr = addr,
                    error = e
                );
                ExitCode::FAILURE
            }
        };
    }
    let mut input = BufReader::new(stdin().lock());
    let mut output = BufWriter::new(stdout().lock());
    match knw_cluster::run_worker(&mut input, &mut output) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            knw_log!(ERROR, "knw-worker", "session failed", error = message);
            ExitCode::FAILURE
        }
    }
}
