//! The cluster demo front end: spawns N `knw-worker` processes, streams a
//! synthetic workload to them over the frame protocol, merges their
//! serialized shards, and checks the merged estimate against a
//! single-process run of the same sketch — which must agree **bit for
//! bit** (that is the whole point of exact mergeability).
//!
//! ```text
//! knw-aggregate [--workers N] [--mode f0|l0] [--estimator NAME]
//!               [--updates COUNT] [--universe N] [--epsilon E] [--seed S]
//!               [--routing round-robin|hash-affine] [--precoalesce]
//!               [--worker PATH]
//! ```
//!
//! With `--mode l0` the stream is churn-heavy signed updates; otherwise a
//! skewed insert-only stream.  The worker binary defaults to the sibling
//! `knw-worker` next to this executable.

use knw_cluster::{
    sibling_worker_exe, ClusterConfig, ClusterError, F0ClusterAggregator, L0ClusterAggregator,
    SketchSpec,
};
use knw_engine::{EngineConfig, RoutingPolicy};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    workers: usize,
    mode: String,
    /// `None` until `--estimator`; defaults per mode (`knw-f0` / `knw-l0`).
    estimator: Option<String>,
    updates: usize,
    universe: u64,
    epsilon: f64,
    seed: u64,
    routing: RoutingPolicy,
    precoalesce: bool,
    worker: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            workers: 4,
            mode: "f0".into(),
            estimator: None,
            updates: 1_000_000,
            universe: 1 << 20,
            epsilon: 0.05,
            seed: 7,
            routing: RoutingPolicy::RoundRobin,
            precoalesce: false,
            worker: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--workers" => {
                opts.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?
            }
            "--mode" => {
                opts.mode = match value("--mode")?.as_str() {
                    mode @ ("f0" | "l0") => mode.to_string(),
                    other => return Err(format!("unknown mode {other:?} (expected f0 or l0)")),
                };
            }
            "--estimator" => opts.estimator = Some(value("--estimator")?),
            "--updates" => {
                opts.updates = value("--updates")?.parse().map_err(|e| format!("{e}"))?
            }
            "--universe" => {
                opts.universe = value("--universe")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--epsilon" => {
                opts.epsilon = value("--epsilon")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--routing" => {
                opts.routing = match value("--routing")?.as_str() {
                    "round-robin" => RoutingPolicy::RoundRobin,
                    "hash-affine" => RoutingPolicy::HashAffine { seed: 0 },
                    other => return Err(format!("unknown routing policy {other:?}")),
                };
            }
            "--precoalesce" => opts.precoalesce = true,
            "--worker" => opts.worker = Some(PathBuf::from(value("--worker")?)),
            "--help" | "-h" => {
                println!(
                    "usage: knw-aggregate [--workers N] [--mode f0|l0] [--estimator NAME]\n\
                     \u{20}                    [--updates COUNT] [--universe N] [--epsilon E]\n\
                     \u{20}                    [--seed S] [--routing round-robin|hash-affine]\n\
                     \u{20}                    [--precoalesce] [--worker PATH]\n\
                     F0 estimators: {}\nL0 estimators: {}",
                    knw_cluster::f0_estimator_names().join(", "),
                    knw_cluster::l0_estimator_names().join(", "),
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// A skewed insert-only stream (a few hot items, a long tail).
fn f0_stream(len: usize, universe: u64, seed: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let x = (i + seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // ~1/4 of the stream hits a 256-item hot set.
            if x.is_multiple_of(4) {
                x % 256
            } else {
                x % universe
            }
        })
        .collect()
}

/// A churn-heavy signed stream (inserts, partial deletes, cancellations).
fn l0_stream(len: usize, universe: u64, seed: u64) -> Vec<(u64, i64)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| (next() % universe, (next() % 9) as i64 - 4))
        .collect()
}

fn run(opts: &Options) -> Result<(), ClusterError> {
    let worker = opts
        .worker
        .clone()
        .or_else(sibling_worker_exe)
        .ok_or_else(|| ClusterError::Io {
            worker: None,
            source: std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "knw-worker binary not found; pass --worker PATH",
            ),
        })?;
    let engine = EngineConfig::new(opts.workers)
        .with_routing(opts.routing)
        .with_precoalesce(opts.precoalesce);
    let config = ClusterConfig::new(opts.workers, worker).with_engine(engine);
    let estimator = opts.estimator.clone().unwrap_or_else(|| {
        if opts.mode == "l0" {
            "knw-l0"
        } else {
            "knw-f0"
        }
        .to_string()
    });

    println!(
        "spawning {} workers ({:?} routing{}) for `{estimator}` over {} updates …",
        opts.workers,
        opts.routing,
        if opts.precoalesce {
            ", pre-coalescing"
        } else {
            ""
        },
        opts.updates,
    );

    let (cluster_estimate, single_estimate) = if opts.mode == "l0" {
        let spec = SketchSpec::l0(&estimator, opts.epsilon, opts.universe, opts.seed);
        let updates = l0_stream(opts.updates, opts.universe, opts.seed);
        let mut cluster = L0ClusterAggregator::spawn(&config, &spec)?;
        for chunk in updates.chunks(1 << 16) {
            cluster.ingest_batch(chunk);
        }
        let merged = cluster.finish()?;
        let mut single = knw_cluster::build_l0(&spec)?;
        single.update_batch(&updates);
        (
            <(u64, i64) as knw_cluster::ClusterUpdate>::estimate(merged.as_ref()),
            single.estimate(),
        )
    } else {
        let spec = SketchSpec::f0(&estimator, opts.epsilon, opts.universe, opts.seed);
        let items = f0_stream(opts.updates, opts.universe, opts.seed);
        let mut cluster = F0ClusterAggregator::spawn(&config, &spec)?;
        for chunk in items.chunks(1 << 16) {
            cluster.ingest_batch(chunk);
        }
        let merged = cluster.finish()?;
        let mut single = knw_cluster::build_f0(&spec)?;
        single.insert_batch(&items);
        (
            <u64 as knw_cluster::ClusterUpdate>::estimate(merged.as_ref()),
            single.estimate(),
        )
    };

    println!("cluster-merged estimate : {cluster_estimate}");
    println!("single-process estimate : {single_estimate}");
    println!(
        "bit-identical           : {}",
        cluster_estimate.to_bits() == single_estimate.to_bits()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("knw-aggregate: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("knw-aggregate: {e}");
            ExitCode::FAILURE
        }
    }
}
