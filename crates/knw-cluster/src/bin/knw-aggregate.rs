//! The cluster demo front end: fans a synthetic workload out to N workers
//! over the frame protocol, merges their serialized shards, and checks the
//! merged estimate against a single-process run of the same sketch — which
//! must agree **bit for bit** (that is the whole point of exact
//! mergeability).
//!
//! ```text
//! knw-aggregate [--transport pipe|tcp|pool] [--workers N] [--mode f0|l0]
//!               [--estimator NAME] [--updates COUNT] [--universe N]
//!               [--epsilon E] [--seed S]
//!               [--routing round-robin|hash-affine] [--precoalesce]
//!               [--recover]
//!               [--worker PATH]                       (pipe transport)
//!               [--connect ADDR]... [--io-timeout S]  (tcp transport)
//!               [--pool REGADDR]                      (pool placement)
//!               [--serve ADDR [--sessions N]]         (serve mode, Linux)
//!               [--metrics ADDR]                      (scrape endpoint)
//! ```
//!
//! Three transports:
//!
//! * `--transport pipe` (default): spawns `--workers` N `knw-worker` child
//!   processes on stdin/stdout pipes.  The worker binary defaults to the
//!   sibling `knw-worker` next to this executable (`--worker PATH`
//!   overrides).
//! * `--transport tcp`: connects to **already-running** workers — one
//!   `--connect host:port` per worker (repeatable; start them with
//!   `knw-worker --listen host:port`).  The worker count is the address
//!   count; `--io-timeout SECS` bounds every read/write so a stalled
//!   worker fails the run instead of hanging it.
//! * `--pool REGADDR` (implies `--transport pool`): binds a worker
//!   registry on `REGADDR` and places `--workers` N shards from the pool
//!   of spares that announce themselves (`knw-worker --listen 0 --register
//!   REGADDR`) — no static address list.  Spares are health-probed
//!   continuously; if the pool cannot cover N live workers the run refuses
//!   typed instead of starting a smaller fleet.
//!
//! In `--serve` mode the process also reads **control commands** from
//! stdin: `rescale N` elastically reshards the live fleet to N workers
//! ([`ClusterAggregator::scale_to`]) with the merged estimate staying
//! bit-identical; retired workers return to the pool and grows draw from
//! it.
//!
//! With `--serve ADDR` (Linux) the binary stops generating its own
//! workload and becomes **estimation-as-a-service**: it binds `ADDR`,
//! prints a `serving on <addr>` banner, and multiplexes concurrent client
//! sessions (the frame protocol: `Hello`, `Batch`…, `Snapshot`/`Finish`)
//! over the shared worker fleet with one nonblocking event loop — no
//! thread per session.  `--sessions N` stops after N completed sessions
//! and prints the merged estimate plus the serve statistics.
//!
//! `--metrics ADDR` exposes the process-wide metrics registry as a
//! Prometheus-text-format scrape endpoint for the duration of the run: in
//! serve mode the listener is multiplexed on the same nonblocking event
//! loop as the sessions; in the generate modes a background
//! [`MetricsServer`](knw_cluster::MetricsServer) thread answers scrapes.
//!
//! With `--mode l0` the stream is churn-heavy signed updates; otherwise a
//! skewed insert-only stream.  `--recover` turns worker loss from a
//! run-fatal error into a supervised reconnect-and-replay (default
//! [`RecoveryPolicy`]): on either transport the lost shard is rebuilt on a
//! fresh link from the aggregator's replay journal.

use knw_cluster::{
    sibling_worker_exe, ClusterAggregator, ClusterConfig, ClusterError, ClusterUpdate,
    MetricsServer, RecoveryPolicy, SketchSpec, TcpClusterConfig, WorkerRegistry,
};
use knw_engine::{EngineConfig, RoutingPolicy};
use knw_metrics::knw_log;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    transport: String,
    /// `None` until `--workers`; pipe transport defaults to 4, the tcp
    /// transport derives the count from `--connect` and rejects the flag.
    workers: Option<usize>,
    mode: String,
    /// `None` until `--estimator`; defaults per mode (`knw-f0` / `knw-l0`).
    estimator: Option<String>,
    updates: usize,
    universe: u64,
    epsilon: f64,
    seed: u64,
    routing: RoutingPolicy,
    precoalesce: bool,
    worker: Option<PathBuf>,
    connect: Vec<String>,
    /// Pool placement: bind a [`WorkerRegistry`] on this address, wait for
    /// `--workers` spares to announce themselves (`knw-worker --listen 0
    /// --register ADDR`), and place the fleet from the pool — no static
    /// address list.
    pool: Option<String>,
    /// `None` until `--io-timeout`; `Some(0)` disables the timeout.
    io_timeout_secs: Option<u64>,
    /// Reconnect-and-replay recovery for lost workers (`--recover`).
    recover: bool,
    /// Serve mode: bind this address and multiplex client sessions over
    /// the worker fleet instead of generating a synthetic workload.
    serve: Option<String>,
    /// Serve mode: stop after this many completed sessions.
    sessions: Option<usize>,
    /// Bind this address as a Prometheus-text scrape endpoint for the run.
    metrics: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            transport: "pipe".into(),
            workers: None,
            mode: "f0".into(),
            estimator: None,
            updates: 1_000_000,
            universe: 1 << 20,
            epsilon: 0.05,
            seed: 7,
            routing: RoutingPolicy::RoundRobin,
            precoalesce: false,
            worker: None,
            connect: Vec::new(),
            pool: None,
            io_timeout_secs: None,
            recover: false,
            serve: None,
            sessions: None,
            metrics: None,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--transport" => {
                opts.transport = match value("--transport")?.as_str() {
                    transport @ ("pipe" | "tcp" | "pool") => transport.to_string(),
                    other => {
                        return Err(format!(
                            "unknown transport {other:?} (expected pipe, tcp or pool)"
                        ))
                    }
                };
            }
            "--workers" => {
                opts.workers = Some(value("--workers")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--mode" => {
                opts.mode = match value("--mode")?.as_str() {
                    mode @ ("f0" | "l0") => mode.to_string(),
                    other => return Err(format!("unknown mode {other:?} (expected f0 or l0)")),
                };
            }
            "--estimator" => opts.estimator = Some(value("--estimator")?),
            "--updates" => {
                opts.updates = value("--updates")?.parse().map_err(|e| format!("{e}"))?
            }
            "--universe" => {
                opts.universe = value("--universe")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--epsilon" => {
                opts.epsilon = value("--epsilon")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--routing" => {
                opts.routing = match value("--routing")?.as_str() {
                    "round-robin" => RoutingPolicy::RoundRobin,
                    "hash-affine" => RoutingPolicy::HashAffine { seed: 0 },
                    other => return Err(format!("unknown routing policy {other:?}")),
                };
            }
            "--precoalesce" => opts.precoalesce = true,
            "--recover" => opts.recover = true,
            "--worker" => opts.worker = Some(PathBuf::from(value("--worker")?)),
            "--connect" => opts.connect.push(value("--connect")?),
            "--pool" => opts.pool = Some(value("--pool")?),
            "--serve" => opts.serve = Some(value("--serve")?),
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--sessions" => {
                opts.sessions = Some(value("--sessions")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--io-timeout" => {
                opts.io_timeout_secs =
                    Some(value("--io-timeout")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: knw-aggregate [--transport pipe|tcp|pool] [--workers N] [--mode f0|l0]\n\
                     \u{20}                    [--estimator NAME] [--updates COUNT] [--universe N]\n\
                     \u{20}                    [--epsilon E] [--seed S]\n\
                     \u{20}                    [--routing round-robin|hash-affine] [--precoalesce]\n\
                     \u{20}                    [--recover]\n\
                     \u{20}                    [--worker PATH]                       (pipe transport)\n\
                     \u{20}                    [--connect ADDR]... [--io-timeout S]  (tcp transport)\n\
                     \u{20}                    [--pool REGADDR]                      (pool placement)\n\
                     \u{20}                    [--serve ADDR [--sessions N]]         (serve mode, Linux)\n\
                     \u{20}                    [--metrics ADDR]                      (scrape endpoint)\n\
                     transports: pipe spawns N `knw-worker` children on stdin/stdout;\n\
                     \u{20}           tcp connects to running `knw-worker --listen ADDR` hosts,\n\
                     \u{20}           one --connect per worker;\n\
                     \u{20}           pool binds a registry on REGADDR and places --workers N\n\
                     \u{20}           shards from the spares that `knw-worker --register` there.\n\
                     --recover: reconnect-and-replay lost workers (bounded retries +\n\
                     \u{20}          per-shard replay journal) instead of failing the run.\n\
                     --serve ADDR: estimation-as-a-service — bind ADDR, print a\n\
                     \u{20}          `serving on <addr>` banner, and multiplex concurrent\n\
                     \u{20}          client sessions over the worker fleet (one nonblocking\n\
                     \u{20}          event loop, no thread per session; Linux only).\n\
                     \u{20}          stdin accepts `rescale N` to reshard the live fleet\n\
                     \u{20}          elastically between sessions (estimates stay exact).\n\
                     --metrics ADDR: serve Prometheus-text scrapes of the process\n\
                     \u{20}          metrics registry for the duration of the run (port 0\n\
                     \u{20}          picks a free port; prints `metrics on <addr>`).\n\
                     F0 estimators: {}\nL0 estimators: {}",
                    knw_cluster::f0_estimator_names().join(", "),
                    knw_cluster::l0_estimator_names().join(", "),
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // `--pool ADDR` selects the pool placement without a `--transport`
    // spelling; an explicit `--transport pool` without the address is a
    // misconfiguration.
    if opts.pool.is_some() && opts.transport == "pipe" {
        opts.transport = "pool".into();
    }
    // Each transport owns its flags; a flag for another transport is a
    // misconfiguration, not something to silently ignore.
    match opts.transport.as_str() {
        "tcp" => {
            if opts.pool.is_some() {
                return Err(
                    "--pool conflicts with --transport tcp; the pool IS the placement \
                            (drop the --transport flag)"
                        .into(),
                );
            }
            if opts.connect.is_empty() {
                return Err("--transport tcp needs at least one --connect ADDR".into());
            }
            if opts.workers.is_some() {
                return Err(
                    "--workers is pipe/pool-only; the tcp worker count is the number of \
                     --connect flags"
                        .into(),
                );
            }
            if opts.worker.is_some() {
                return Err("--worker PATH is pipe-only; tcp connects to running workers".into());
            }
        }
        "pool" => {
            if opts.pool.is_none() {
                return Err(
                    "--transport pool needs --pool ADDR (the registry bind address)".into(),
                );
            }
            if !opts.connect.is_empty() {
                return Err(
                    "--connect conflicts with --pool; pooled workers announce themselves \
                     via `knw-worker --register`"
                        .into(),
                );
            }
            if opts.worker.is_some() {
                return Err(
                    "--worker PATH is pipe-only; pooled workers are already running".into(),
                );
            }
        }
        _ => {
            if !opts.connect.is_empty() {
                return Err("--connect is only meaningful with --transport tcp".into());
            }
            if opts.io_timeout_secs.is_some() {
                return Err(
                    "--io-timeout is only meaningful with --transport tcp or --pool".into(),
                );
            }
        }
    }
    if opts.sessions.is_some() && opts.serve.is_none() {
        return Err("--sessions is only meaningful with --serve ADDR".into());
    }
    Ok(opts)
}

/// How long the pool placement waits for enough spares to announce
/// themselves before refusing with `PoolExhausted`.
const POOL_WAIT: Duration = Duration::from_secs(30);

/// How the aggregator reaches its workers, resolved from the CLI flags.
enum TransportChoice {
    Pipe(ClusterConfig),
    Tcp(TcpClusterConfig),
    Pool {
        registry: Arc<WorkerRegistry>,
        engine: EngineConfig,
        recovery: Option<RecoveryPolicy>,
    },
}

impl TransportChoice {
    fn from_options(opts: &Options) -> Result<Self, ClusterError> {
        let workers = opts.workers.unwrap_or(4);
        let engine = EngineConfig::new(workers)
            .with_routing(opts.routing)
            .with_precoalesce(opts.precoalesce);
        if let Some(pool_addr) = &opts.pool {
            let registry =
                Arc::new(
                    WorkerRegistry::bind(pool_addr).map_err(|source| ClusterError::Io {
                        worker: None,
                        source,
                    })?,
                );
            println!("worker pool registry on {}", registry.local_addr());
            // Health-probe the spares continuously: pops skip addresses
            // that failed their last connect-and-greet probe.
            registry.start_probing(Duration::from_secs(2), Duration::from_secs(1));
            // Spares race the aggregator's startup; give them a bounded
            // window to announce themselves before refusing.
            let deadline = std::time::Instant::now() + POOL_WAIT;
            while registry.live_available() < workers && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(50));
            }
            return Ok(TransportChoice::Pool {
                registry,
                engine,
                recovery: opts.recover.then(RecoveryPolicy::default),
            });
        }
        if opts.transport == "tcp" {
            let mut config = TcpClusterConfig::new(opts.connect.iter().cloned());
            config = config.with_engine(engine);
            if let Some(secs) = opts.io_timeout_secs {
                // 0 = no timeout (a zero Duration would be rejected by
                // set_read_timeout and fail every connection).
                config = config.with_io_timeout((secs > 0).then(|| Duration::from_secs(secs)));
            }
            if opts.recover {
                config = config.with_recovery(RecoveryPolicy::default());
            }
            return Ok(TransportChoice::Tcp(config));
        }
        let worker = opts
            .worker
            .clone()
            .or_else(sibling_worker_exe)
            .ok_or_else(|| ClusterError::Io {
                worker: None,
                source: std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "knw-worker binary not found; pass --worker PATH",
                ),
            })?;
        let mut config = ClusterConfig::new(workers, worker).with_engine(engine);
        if opts.recover {
            // Pipe recovery re-spawns a fresh child and replays the journal.
            config = config.with_recovery(RecoveryPolicy::default());
        }
        Ok(TransportChoice::Pipe(config))
    }

    fn workers(&self) -> usize {
        match self {
            TransportChoice::Pipe(config) => config.engine.shards,
            TransportChoice::Tcp(config) => config.addrs.len(),
            TransportChoice::Pool { engine, .. } => engine.shards,
        }
    }

    fn describe(&self) -> String {
        match self {
            TransportChoice::Pipe(_) => "pipe (spawned children)".into(),
            TransportChoice::Tcp(config) => format!("tcp ({})", config.addrs.join(", ")),
            TransportChoice::Pool { registry, .. } => {
                format!(
                    "pool (registry {}, {} live spare(s))",
                    registry.local_addr(),
                    registry.live_available(),
                )
            }
        }
    }

    fn aggregator<U: ClusterUpdate>(
        &self,
        spec: &SketchSpec,
    ) -> Result<ClusterAggregator<U>, ClusterError> {
        match self {
            TransportChoice::Pipe(config) => ClusterAggregator::spawn(config, spec),
            TransportChoice::Tcp(config) => ClusterAggregator::connect(config, spec),
            TransportChoice::Pool {
                registry,
                engine,
                recovery,
            } => ClusterAggregator::from_pool_with(registry, *engine, *recovery, spec),
        }
    }
}

/// A skewed insert-only stream (a few hot items, a long tail).
fn f0_stream(len: usize, universe: u64, seed: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let x = (i + seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // ~1/4 of the stream hits a 256-item hot set.
            if x.is_multiple_of(4) {
                x % 256
            } else {
                x % universe
            }
        })
        .collect()
}

/// A churn-heavy signed stream (inserts, partial deletes, cancellations).
fn l0_stream(len: usize, universe: u64, seed: u64) -> Vec<(u64, i64)> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| (next() % universe, (next() % 9) as i64 - 4))
        .collect()
}

/// Serve mode: bind `addr`, multiplex client sessions over the worker
/// fleet with the nonblocking event loop, and (once `--sessions N`
/// completes) print the merged estimate and serve statistics.
#[cfg(target_os = "linux")]
fn run_serve(opts: &Options, addr: &str, estimator: &str) -> Result<(), ClusterError> {
    use knw_cluster::{serve_sessions, SessionServeOptions};
    use std::net::TcpListener;

    let choice = TransportChoice::from_options(opts)?;
    let listener = TcpListener::bind(addr).map_err(|source| ClusterError::Io {
        worker: None,
        source,
    })?;
    let bound = listener.local_addr().map_err(|source| ClusterError::Io {
        worker: None,
        source,
    })?;

    let mut serve_opts = SessionServeOptions::default();
    if let Some(n) = opts.sessions {
        serve_opts = serve_opts.with_max_sessions(n);
    }
    // The scrape listener rides the same epoll loop as the sessions — no
    // extra thread; see `SessionServeOptions::with_metrics_listener`.
    if let Some(metrics_addr) = &opts.metrics {
        let scrape = TcpListener::bind(metrics_addr).map_err(|source| ClusterError::Io {
            worker: None,
            source,
        })?;
        let scrape_bound = scrape.local_addr().map_err(|source| ClusterError::Io {
            worker: None,
            source,
        })?;
        serve_opts = serve_opts.with_metrics_listener(std::sync::Arc::new(scrape));
        println!("metrics on {scrape_bound}");
    }

    // Runtime elastic rescaling: a control thread reads stdin lines and
    // forwards `rescale N` commands to the serve loop, which applies them
    // between ticks as `ClusterAggregator::scale_to(N)`.  The thread
    // blocks on stdin for the life of the process; it never outlives main.
    let (rescale_tx, rescale_rx) = std::sync::mpsc::channel::<usize>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => return, // EOF: no controller attached
                Ok(_) => {}
            }
            let mut words = line.split_whitespace();
            match (words.next(), words.next().map(str::parse::<usize>)) {
                (Some("rescale"), Some(Ok(target))) => {
                    if rescale_tx.send(target).is_err() {
                        return; // serve loop gone
                    }
                    knw_log!(INFO, "knw-aggregate", "rescale queued", target = target);
                }
                (None, _) => {} // blank line
                _ => {
                    knw_log!(
                        WARN,
                        "knw-aggregate",
                        "unknown control command (expected `rescale N`)",
                        line = line.trim(),
                    );
                }
            }
        }
    });
    serve_opts = serve_opts.with_rescale_channel(rescale_rx);

    println!(
        "serving on {bound} ({} workers via {}, `{estimator}`) …",
        choice.workers(),
        choice.describe(),
    );

    let (stats, estimate) = if opts.mode == "l0" {
        let spec = SketchSpec::l0(estimator, opts.epsilon, opts.universe, opts.seed);
        let mut aggregator = choice.aggregator::<(u64, i64)>(&spec)?;
        let stats = serve_sessions(&listener, &mut aggregator, &serve_opts)?;
        let merged = aggregator.finish()?;
        (
            stats,
            <(u64, i64) as ClusterUpdate>::estimate(merged.as_ref()),
        )
    } else {
        let spec = SketchSpec::f0(estimator, opts.epsilon, opts.universe, opts.seed);
        let mut aggregator = choice.aggregator::<u64>(&spec)?;
        let stats = serve_sessions(&listener, &mut aggregator, &serve_opts)?;
        let merged = aggregator.finish()?;
        (stats, <u64 as ClusterUpdate>::estimate(merged.as_ref()))
    };

    println!(
        "sessions served    : {} ({} errored, {} refused; peak {} concurrent)",
        stats.sessions_served,
        stats.sessions_errored,
        stats.sessions_refused,
        stats.peak_concurrent,
    );
    println!(
        "ingested           : {} updates in {} batches; {} snapshots served",
        stats.updates_ingested, stats.batches_ingested, stats.snapshots_served,
    );
    println!("merged estimate    : {estimate}");
    Ok(())
}

#[cfg(not(target_os = "linux"))]
fn run_serve(_opts: &Options, _addr: &str, _estimator: &str) -> Result<(), ClusterError> {
    Err(ClusterError::Io {
        worker: None,
        source: std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "--serve needs the epoll readiness loop and is Linux-only",
        ),
    })
}

fn run(opts: &Options) -> Result<(), ClusterError> {
    let estimator = opts.estimator.clone().unwrap_or_else(|| {
        if opts.mode == "l0" {
            "knw-l0"
        } else {
            "knw-f0"
        }
        .to_string()
    });

    if let Some(addr) = &opts.serve {
        return run_serve(opts, addr, &estimator);
    }

    // The generate modes are blocking, so the scrape endpoint is a
    // background thread; held until the run finishes, then dropped.
    let mut _metrics_server = None;
    if let Some(metrics_addr) = &opts.metrics {
        let server = MetricsServer::bind(metrics_addr).map_err(|source| ClusterError::Io {
            worker: None,
            source,
        })?;
        println!("metrics on {}", server.local_addr());
        _metrics_server = Some(server);
    }

    let choice = TransportChoice::from_options(opts)?;

    println!(
        "aggregating over {} workers via {} ({:?} routing{}) for `{estimator}` over {} updates …",
        choice.workers(),
        choice.describe(),
        opts.routing,
        if opts.precoalesce {
            ", pre-coalescing"
        } else {
            ""
        },
        opts.updates,
    );

    let (cluster_estimate, single_estimate) = if opts.mode == "l0" {
        let spec = SketchSpec::l0(&estimator, opts.epsilon, opts.universe, opts.seed);
        let updates = l0_stream(opts.updates, opts.universe, opts.seed);
        let mut cluster = choice.aggregator::<(u64, i64)>(&spec)?;
        for chunk in updates.chunks(1 << 16) {
            cluster.ingest_batch(chunk);
        }
        let merged = cluster.finish()?;
        let mut single = knw_cluster::build_l0(&spec)?;
        single.update_batch(&updates);
        (
            <(u64, i64) as ClusterUpdate>::estimate(merged.as_ref()),
            single.estimate(),
        )
    } else {
        let spec = SketchSpec::f0(&estimator, opts.epsilon, opts.universe, opts.seed);
        let items = f0_stream(opts.updates, opts.universe, opts.seed);
        let mut cluster = choice.aggregator::<u64>(&spec)?;
        for chunk in items.chunks(1 << 16) {
            cluster.ingest_batch(chunk);
        }
        let merged = cluster.finish()?;
        let mut single = knw_cluster::build_f0(&spec)?;
        single.insert_batch(&items);
        (
            <u64 as ClusterUpdate>::estimate(merged.as_ref()),
            single.estimate(),
        )
    };

    println!("cluster-merged estimate : {cluster_estimate}");
    println!("single-process estimate : {single_estimate}");
    println!(
        "bit-identical           : {}",
        cluster_estimate.to_bits() == single_estimate.to_bits()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            knw_log!(ERROR, "knw-aggregate", "invalid arguments", error = message);
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            knw_log!(ERROR, "knw-aggregate", "run failed", error = e);
            ExitCode::FAILURE
        }
    }
}
