//! Resolving a [`SketchSpec`] to a live sketch, and shard bytes back to a
//! mergeable sketch — the name→type registry of the wire format.
//!
//! The worker binary and the aggregator are separate processes; the only
//! thing they share is the spec travelling in the `Hello` frame.  This
//! module is the single place where an estimator *name* (the same string
//! `CardinalityEstimator::name` / `TurnstileEstimator::name` reports) is
//! mapped to a concrete type, for construction on the worker and for
//! deserialization on the aggregator, so the two sides cannot disagree
//! about what a shard's bytes mean.
//!
//! The constructors mirror `knw_baselines::all_f0_estimators` /
//! `all_l0_estimators` parameter-for-parameter: a cluster run over spec
//! `(ε, n, seed)` is merge-compatible with (and bit-identical to) a local
//! zoo instance built from the same numbers.

use crate::error::ClusterError;
use crate::frame::SketchSpec;
use knw_baselines::{
    AmsEstimator, BjkstSketch, ExactCounter, ExactL0Counter, FlajoletMartin, GangulyL0,
    GibbonsTirthapura, HyperLogLog, KMinValues, LinearCounting, LogLog,
    LINEAR_COUNTING_CAPACITY_FACTOR,
};
use knw_core::{
    DynMergeableCardinalityEstimator, DynMergeableTurnstileEstimator, F0Config, KnwF0Sketch,
    KnwL0Sketch, L0Config,
};

/// An F0 shard sketch that can ship itself over the wire: the mergeable
/// estimator contract plus serialization to the workspace's binary codec.
///
/// Blanket-implemented for every mergeable F0 estimator that derives the
/// serde traits — never implement it manually.
pub trait WireF0Sketch: DynMergeableCardinalityEstimator {
    /// The sketch serialized with the workspace codec (the payload of a
    /// `Shard` frame).
    fn wire_bytes(&self) -> Vec<u8>;
}

impl<T> WireF0Sketch for T
where
    T: DynMergeableCardinalityEstimator + serde::Serialize,
{
    fn wire_bytes(&self) -> Vec<u8> {
        serde::to_bytes(self)
    }
}

/// The turnstile counterpart of [`WireF0Sketch`].
pub trait WireL0Sketch: DynMergeableTurnstileEstimator {
    /// The sketch serialized with the workspace codec.
    fn wire_bytes(&self) -> Vec<u8>;
}

impl<T> WireL0Sketch for T
where
    T: DynMergeableTurnstileEstimator + serde::Serialize,
{
    fn wire_bytes(&self) -> Vec<u8> {
        serde::to_bytes(self)
    }
}

/// Every F0 estimator name the wire format can resolve (the zoo of
/// `knw_baselines::all_f0_estimators`).
#[must_use]
pub fn f0_estimator_names() -> &'static [&'static str] {
    &[
        "knw-f0",
        "hyperloglog",
        "loglog",
        "flajolet-martin",
        "kmv-bottom-k",
        "bjkst",
        "gibbons-tirthapura",
        "linear-counting",
        "ams",
        "exact",
    ]
}

/// Every L0 estimator name the wire format can resolve (the zoo of
/// `knw_baselines::all_l0_estimators`).
#[must_use]
pub fn l0_estimator_names() -> &'static [&'static str] {
    &["knw-l0", "ganguly-l0", "exact-l0"]
}

fn l0_config(spec: &SketchSpec) -> L0Config {
    // The same bounds `all_l0_estimators` uses, so cluster shards merge
    // with locally built zoo instances.
    L0Config::new(spec.epsilon, spec.universe)
        .with_seed(spec.seed)
        .with_stream_length_bound(1 << 32)
        .with_update_magnitude_bound(1 << 20)
}

fn linear_counting_capacity(epsilon: f64) -> u64 {
    (LINEAR_COUNTING_CAPACITY_FACTOR / (epsilon * epsilon)) as u64
}

/// Builds a fresh F0 shard sketch for `spec`.
///
/// # Errors
///
/// [`ClusterError::UnknownEstimator`] if the name is not in the zoo.
pub fn build_f0(spec: &SketchSpec) -> Result<Box<dyn WireF0Sketch>, ClusterError> {
    let (eps, n, seed) = (spec.epsilon, spec.universe, spec.seed);
    Ok(match spec.estimator.as_str() {
        "knw-f0" => Box::new(KnwF0Sketch::new(F0Config::new(eps, n).with_seed(seed))),
        "hyperloglog" => Box::new(HyperLogLog::with_error(eps, seed)),
        "loglog" => Box::new(LogLog::with_error(eps, seed)),
        "flajolet-martin" => Box::new(FlajoletMartin::with_error(eps, seed)),
        "kmv-bottom-k" => Box::new(KMinValues::with_error(eps, seed)),
        "bjkst" => Box::new(BjkstSketch::with_error(eps, n, seed)),
        "gibbons-tirthapura" => Box::new(GibbonsTirthapura::with_error(eps, n, seed)),
        "linear-counting" => Box::new(LinearCounting::with_capacity(
            linear_counting_capacity(eps),
            seed,
        )),
        "ams" => Box::new(AmsEstimator::new(64, seed)),
        "exact" => Box::new(ExactCounter::new()),
        other => {
            return Err(ClusterError::UnknownEstimator {
                name: other.to_string(),
            })
        }
    })
}

/// Builds a fresh L0 shard sketch for `spec`.
///
/// # Errors
///
/// [`ClusterError::UnknownEstimator`] if the name is not in the zoo.
pub fn build_l0(spec: &SketchSpec) -> Result<Box<dyn WireL0Sketch>, ClusterError> {
    Ok(match spec.estimator.as_str() {
        "knw-l0" => Box::new(KnwL0Sketch::new(l0_config(spec))),
        "ganguly-l0" => Box::new(GangulyL0::new(
            spec.epsilon,
            spec.universe,
            l0_config(spec).log_mm(),
            spec.seed,
        )),
        "exact-l0" => Box::new(ExactL0Counter::new()),
        other => {
            return Err(ClusterError::UnknownEstimator {
                name: other.to_string(),
            })
        }
    })
}

fn decode<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, String> {
    serde::from_bytes(bytes).map_err(|e| e.to_string())
}

/// Deserializes a `Shard` frame's bytes back into the concrete F0 sketch
/// `spec` names, boxed behind the mergeable contract.  Codec failures come
/// back as the raw message (the caller attributes them to a worker).
///
/// # Errors
///
/// The codec's rejection message, or the unknown-estimator name prefixed
/// with `unknown estimator`.
pub fn f0_shard_from_bytes(
    spec: &SketchSpec,
    bytes: &[u8],
) -> Result<Box<dyn WireF0Sketch>, String> {
    Ok(match spec.estimator.as_str() {
        "knw-f0" => Box::new(decode::<KnwF0Sketch>(bytes)?),
        "hyperloglog" => Box::new(decode::<HyperLogLog>(bytes)?),
        "loglog" => Box::new(decode::<LogLog>(bytes)?),
        "flajolet-martin" => Box::new(decode::<FlajoletMartin>(bytes)?),
        "kmv-bottom-k" => Box::new(decode::<KMinValues>(bytes)?),
        "bjkst" => Box::new(decode::<BjkstSketch>(bytes)?),
        "gibbons-tirthapura" => Box::new(decode::<GibbonsTirthapura>(bytes)?),
        "linear-counting" => Box::new(decode::<LinearCounting>(bytes)?),
        "ams" => Box::new(decode::<AmsEstimator>(bytes)?),
        "exact" => Box::new(decode::<ExactCounter>(bytes)?),
        other => return Err(format!("unknown estimator {other:?}")),
    })
}

/// Deserializes L0 shard bytes; codec failures come back as the raw message
/// (the caller attributes them to a worker).
///
/// # Errors
///
/// The codec's rejection message, or the unknown-estimator name prefixed
/// with `unknown estimator`.
pub fn l0_shard_from_bytes(
    spec: &SketchSpec,
    bytes: &[u8],
) -> Result<Box<dyn WireL0Sketch>, String> {
    Ok(match spec.estimator.as_str() {
        "knw-l0" => Box::new(decode::<KnwL0Sketch>(bytes)?),
        "ganguly-l0" => Box::new(decode::<GangulyL0>(bytes)?),
        "exact-l0" => Box::new(decode::<ExactL0Counter>(bytes)?),
        other => return Err(format!("unknown estimator {other:?}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SketchSpec;

    #[test]
    fn every_f0_name_builds_and_round_trips() {
        for &name in f0_estimator_names() {
            let spec = SketchSpec::f0(name, 0.1, 1 << 16, 99);
            let mut sketch = build_f0(&spec).expect("zoo name builds");
            assert_eq!(sketch.name(), name, "registry name drifted");
            sketch.insert_batch(&[1, 2, 3, 2, 1]);
            let bytes = sketch.wire_bytes();
            let wired = f0_shard_from_bytes(&spec, &bytes).expect("round trip");
            assert_eq!(wired.estimate(), sketch.estimate(), "{name} deviated");
        }
    }

    #[test]
    fn every_l0_name_builds_and_round_trips() {
        for &name in l0_estimator_names() {
            let spec = SketchSpec::l0(name, 0.1, 1 << 16, 99);
            let mut sketch = build_l0(&spec).expect("zoo name builds");
            assert_eq!(sketch.name(), name, "registry name drifted");
            sketch.update_batch(&[(1, 5), (2, -3), (1, -5)]);
            let bytes = sketch.wire_bytes();
            let wired = l0_shard_from_bytes(&spec, &bytes).expect("round trip");
            assert_eq!(wired.estimate(), sketch.estimate(), "{name} deviated");
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let spec = SketchSpec::f0("no-such-sketch", 0.1, 1 << 16, 1);
        assert!(matches!(
            build_f0(&spec),
            Err(ClusterError::UnknownEstimator { .. })
        ));
        assert!(f0_shard_from_bytes(&spec, &[]).is_err());
        let spec = SketchSpec::l0("no-such-sketch", 0.1, 1 << 16, 1);
        assert!(matches!(
            build_l0(&spec),
            Err(ClusterError::UnknownEstimator { .. })
        ));
        assert!(l0_shard_from_bytes(&spec, &[]).is_err());
    }

    #[test]
    fn corrupt_shard_bytes_are_decode_errors_not_panics() {
        let spec = SketchSpec::f0("knw-f0", 0.1, 1 << 16, 1);
        let sketch = build_f0(&spec).expect("builds");
        let mut bytes = sketch.wire_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(f0_shard_from_bytes(&spec, &bytes).is_err());
    }
}
