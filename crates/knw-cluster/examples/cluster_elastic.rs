//! Elastic resharding end to end: a fleet placed from a worker-registry
//! pool grows on a load burst and shrinks back on the drain, with the
//! final estimate **bit-identical** to a single-process run over the same
//! stream.
//!
//! ```text
//! cargo build -p knw-cluster --bins          # the example spawns knw-worker
//! cargo run -p knw-cluster --example cluster_elastic
//! ```
//!
//! The walk-through:
//!
//! 1. bind a [`WorkerRegistry`] and spawn four `knw-worker --listen
//!    --register` spares announcing themselves to it;
//! 2. place a **2-worker** fleet from the pool ([`from_pool_with`]) — no
//!    static address list — with hash-affine routing and journaling on;
//! 3. stream the steady phase, then `scale_to(4)` when the burst arrives
//!    (the two new shards replay their split parents' checkpoints +
//!    re-routed journals), stream the burst;
//! 4. `scale_to(2)` on the drain (retired shards fold into their split
//!    parents via the exact merge, their workers return to the pool),
//!    stream the tail;
//! 5. finish and compare bits against the single-process fold.
//!
//! [`from_pool_with`]: L0ClusterAggregator::from_pool_with

use knw_cluster::{
    build_l0, sibling_worker_exe, spawn_listening_worker, L0ClusterAggregator, RecoveryPolicy,
    SketchSpec, WorkerRegistry,
};
use knw_engine::{EngineConfig, RoutingPolicy};
use std::process::Child;
use std::sync::Arc;
use std::time::Duration;

/// A spare worker process, reaped on drop.
struct Spare(Child);

impl Drop for Spare {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// A churn-heavy signed update stream (mixed signs, cancellations).
fn updates(from: u64, len: u64) -> Vec<(u64, i64)> {
    (from..from + len)
        .map(|i| {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x % 4_096, (x % 9) as i64 - 4)
        })
        .collect()
}

fn main() {
    let Some(worker) = sibling_worker_exe() else {
        eprintln!(
            "knw-worker binary not found next to this example; \
             run `cargo build -p knw-cluster --bins` first"
        );
        return;
    };

    // The pool: a registry plus four spares announcing themselves to it.
    // Nothing here names a worker address — placement is the registry's job.
    let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
    registry.start_probing(Duration::from_secs(1), Duration::from_millis(500));
    let registry_addr = registry.local_addr().to_string();
    let mut spares = Vec::new();
    for _ in 0..4 {
        let (child, addr) =
            spawn_listening_worker(&worker, "127.0.0.1:0", &["--register", &registry_addr])
                .expect("spawn spare worker");
        println!("spare worker listening on {addr}, registered with {registry_addr}");
        spares.push(Spare(child));
    }
    while registry.available() < 4 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // A 2-worker fleet drawn from the pool.  Journaling (the recovery
    // policy) is what makes later rescales possible: grown shards replay
    // split journals, so without it `scale_to` refuses typed.
    let spec = SketchSpec::l0("knw-l0", 0.1, 1 << 12, 97);
    let mut cluster = L0ClusterAggregator::from_pool_with(
        &registry,
        EngineConfig::new(2)
            .with_batch_size(512)
            .with_routing(RoutingPolicy::HashAffine { seed: 7 }),
        Some(RecoveryPolicy::default()),
        &spec,
    )
    .expect("place 2 workers from the pool");
    let mut single = build_l0(&spec).expect("zoo estimator");
    println!(
        "placed a 2-worker fleet from the pool ({} spare(s) left)",
        registry.available()
    );

    // Steady phase on 2 shards.
    let steady = updates(0, 6_000);
    cluster.ingest_batch(&steady);
    single.update_batch(&steady);

    // The burst arrives: grow to 4.  The two new shards are placed from
    // the remaining spares; each inherits its split parent's checkpoint
    // plus the journaled updates the grown routing table moves over.
    cluster.scale_to(4).expect("grow 2 -> 4 on the burst");
    println!(
        "burst: grew to 4 workers ({} spare(s) left)",
        registry.available()
    );
    let burst = updates(6_000, 12_000);
    cluster.ingest_batch(&burst);
    single.update_batch(&burst);

    // The drain: shrink back to 2.  Each retiree's final shard folds into
    // its split parent via the exact merge, and its still-serving worker
    // returns to the pool for the next burst to re-adopt.
    cluster.scale_to(2).expect("shrink 4 -> 2 on the drain");
    println!(
        "drain: shrank to 2 workers ({} spare(s) back in the pool)",
        registry.available()
    );
    let tail = updates(18_000, 3_000);
    cluster.ingest_batch(&tail);
    single.update_batch(&tail);

    let merged = cluster.finish().expect("resharded run reports cleanly");
    let distributed = merged.estimate();
    let reference = single.estimate();
    println!("distributed estimate: {distributed}");
    println!("single-process:       {reference}");
    assert_eq!(
        distributed.to_bits(),
        reference.to_bits(),
        "elastic resharding must stay bit-identical"
    );
    println!("bit-identical across grow and shrink ✓");
    drop(spares);
}
