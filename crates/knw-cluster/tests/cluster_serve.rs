//! The multi-session serve-loop acceptance tests: hundreds-to-thousands
//! of **concurrent** client sessions multiplexed by one nonblocking
//! event loop over one shared worker fleet — no thread per session on
//! either side — leaving the aggregate bit-identical to a single-process
//! run over the union of the session streams, with bounded write queues
//! and typed fault surfacing (including the mid-frame-stall desync).
//!
//! The serve loop is epoll-based, so this file is Linux-only (as is the
//! module it tests).
#![cfg(target_os = "linux")]

use knw_cluster::{
    build_f0, build_l0, f0_estimator_names, f0_shard_from_bytes, l0_estimator_names,
    l0_shard_from_bytes, read_frame, serve_sessions, write_frame, ClusterConfig, ClusterError,
    ClusterUpdate, F0ClusterAggregator, Frame, L0ClusterAggregator, SessionServeOptions,
    SketchSpec,
};
use knw_cluster::{drive_sessions, ClusterAggregator};
use knw_engine::EngineConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER_EXE: &str = env!("CARGO_BIN_EXE_knw-worker");
const EPS: f64 = 0.1;
const UNIVERSE: u64 = 1 << 16;
const SEED: u64 = 2026;
const DEADLINE: Duration = Duration::from_secs(120);

fn config(workers: usize) -> ClusterConfig {
    ClusterConfig::new(workers, WORKER_EXE)
        .with_engine(EngineConfig::new(workers).with_batch_size(1024))
}

/// A skewed insert-only stream.
fn items(len: u64) -> Vec<u64> {
    (0..len)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % UNIVERSE)
        .collect()
}

/// A churn-heavy signed update stream (mixed signs, cancellations).
fn updates(len: u64) -> Vec<(u64, i64)> {
    (0..len)
        .map(|i| {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x % 4_096, (x % 9) as i64 - 4)
        })
        .collect()
}

/// Splits a stream into `sessions` per-session slices (the union of the
/// slices is the whole stream).
fn split<U: Clone>(stream: &[U], sessions: usize) -> Vec<Vec<U>> {
    let per = stream.len().div_ceil(sessions);
    stream.chunks(per.max(1)).map(<[U]>::to_vec).collect()
}

/// Runs `serve_sessions` over a fresh pipe-backed aggregator on a server
/// thread, drives `streams` concurrent client sessions against it, and
/// returns `(serve stats, drive stats, final merged shard wire bytes)`;
/// callers deserialize the bytes and compare **estimate bits** against a
/// single-process fold (the workspace's bit-identity witness — serialized
/// layouts of sample-keeping sketches are insertion-order dependent, the
/// estimates are not).
fn serve_and_drive<U, A>(
    spec: &SketchSpec,
    streams: Vec<Vec<U>>,
    batch: usize,
    snapshot_every: Option<usize>,
    spawn: A,
    options: SessionServeOptions,
) -> (knw_cluster::ServeStats, knw_cluster::DriveStats, Vec<u8>)
where
    U: ClusterUpdate + Send + 'static,
    A: FnOnce(&SketchSpec) -> ClusterAggregator<U>,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind serve listener");
    let addr = listener.local_addr().expect("addr").to_string();
    let sessions = streams.len();
    let mut aggregator = spawn(spec);
    let options = options.with_max_sessions(sessions);
    let server = std::thread::spawn(move || {
        let stats = serve_sessions(&listener, &mut aggregator, &options)
            .expect("serve loop completes cleanly");
        let merged = aggregator.finish().expect("post-serve finish");
        (stats, U::shard_bytes(merged.as_ref()))
    });
    let drive = drive_sessions::<U>(&addr, spec, &streams, batch, snapshot_every, DEADLINE)
        .expect("all sessions complete");
    let (stats, merged_bytes) = server.join().expect("server thread");
    (stats, drive, merged_bytes)
}

/// One scrape of a metrics endpoint: connect, send a minimal GET, return
/// the exposition body (headers stripped).  `None` on any failure — the
/// caller retries; a scrape is never load-bearing.
fn scrape(addr: &SocketAddr) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2)).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: soak\r\n\r\n")
        .ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (_, body) = response.split_once("\r\n\r\n")?;
    Some(body.to_string())
}

/// The value of an unlabelled counter in a Prometheus-text exposition.
fn counter_value(body: &str, family: &str) -> u64 {
    body.lines()
        .find_map(|line| {
            line.strip_prefix(family)
                .and_then(|rest| rest.strip_prefix(' '))
                .and_then(|value| value.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// The sum of a labelled counter family (e.g. per-shard counters) in a
/// Prometheus-text exposition.
fn labelled_counter_sum(body: &str, family: &str) -> u64 {
    body.lines()
        .filter(|line| line.starts_with(family) && line[family.len()..].starts_with('{'))
        .filter_map(|line| {
            line.rsplit_once(' ')
                .and_then(|(_, v)| v.parse::<u64>().ok())
        })
        .sum()
}

/// Tentpole soak, F0 half: 1 000 concurrent sessions over one shared
/// fleet, one serve thread, one drive thread — bounded queues, every
/// session served, and the aggregate bit-identical to a single-process
/// fold of the union stream.  A scraper thread hits the `--metrics`-style
/// exposition listener (multiplexed on the same epoll loop) **while the
/// soak runs**, proving the endpoint answers under full session load.
#[test]
fn a_thousand_concurrent_f0_sessions_aggregate_bit_identically() {
    const SESSIONS: usize = 1_000;
    let stream = items(1_000_000);
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let metrics_listener = TcpListener::bind("127.0.0.1:0").expect("bind metrics listener");
    let metrics_addr = metrics_listener.local_addr().expect("metrics addr");
    let options = SessionServeOptions::default()
        .with_max_write_queue(1 << 16)
        .with_metrics_listener(Arc::new(metrics_listener));
    // Scrape until the serve loop reports live traffic (the global
    // registry is process-wide and other tests also feed it, so the
    // assertions are non-zero floors, not exact counts).
    let scraper = std::thread::spawn(move || {
        let deadline = Instant::now() + DEADLINE;
        let mut last = None;
        while Instant::now() < deadline {
            if let Some(body) = scrape(&metrics_addr) {
                let live = counter_value(&body, "knw_serve_sessions_served_total") > 0
                    && counter_value(&body, "knw_serve_batches_ingested_total") > 0
                    && labelled_counter_sum(&body, "knw_cluster_shard_batches_total") > 0;
                last = Some(body);
                if live {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        last
    });
    let (stats, drive, merged_bytes) = serve_and_drive(
        &spec,
        split(&stream, SESSIONS),
        512,
        None,
        |spec| F0ClusterAggregator::spawn(&config(2), spec).expect("spawn fleet"),
        options.clone(),
    );

    let body = scraper
        .join()
        .expect("scraper thread")
        .expect("the metrics endpoint answered mid-soak");
    assert!(
        body.contains("# TYPE knw_serve_sessions_served_total counter"),
        "exposition carries typed serve counters: {body}"
    );
    assert!(
        counter_value(&body, "knw_serve_sessions_served_total") > 0,
        "mid-soak scrape saw served sessions: {body}"
    );
    assert!(
        counter_value(&body, "knw_serve_batches_ingested_total") > 0,
        "mid-soak scrape saw ingested batches: {body}"
    );
    assert!(
        labelled_counter_sum(&body, "knw_cluster_shard_batches_total") > 0,
        "mid-soak scrape saw per-shard dispatch counters: {body}"
    );

    assert_eq!(stats.sessions_served, SESSIONS, "{stats:?}");
    assert_eq!(stats.sessions_errored, 0, "{stats:?}");
    assert_eq!(stats.updates_ingested, stream.len() as u64);
    assert_eq!(drive.sessions, SESSIONS);
    assert_eq!(drive.shard_replies, SESSIONS, "one Finish shard each");
    // Drive-side accounting: one Hello and one Finish per session plus
    // every Batch frame, and a non-trivial peak client write queue.
    assert!(
        drive.frames_sent >= (2 * SESSIONS + stream.len() / 512) as u64,
        "hello + finish + batch frames all counted: {drive:?}"
    );
    assert!(drive.peak_queued_bytes > 0, "{drive:?}");
    assert!(
        stats.peak_concurrent > 1,
        "sessions must overlap, not serialize: {stats:?}"
    );
    // The write-queue bound holds up to one in-flight reply frame.
    assert!(
        stats.peak_write_queue_bytes <= options.max_write_queue + (64 << 10),
        "write queues must stay bounded: {stats:?}"
    );

    let merged = f0_shard_from_bytes(&spec, &merged_bytes).expect("merged shard decodes");
    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(
        merged.estimate().to_bits(),
        single.estimate().to_bits(),
        "1k interleaved sessions must be bit-identical to one process"
    );
}

/// Tentpole soak, L0 half: the same property over signed turnstile
/// streams.  The soak uses the compact `ganguly-l0` shard (~17 KB on the
/// wire) — every `Finish` ships the merged shard back, and 1 000 copies
/// of the ~11 MB `knw-l0` shard would measure loopback bandwidth, not
/// the serve loop; `knw-l0` runs the same concurrency path in
/// `every_zoo_member_serves_concurrent_sessions_bit_identically`.
#[test]
fn a_thousand_concurrent_l0_sessions_aggregate_bit_identically() {
    const SESSIONS: usize = 1_000;
    let stream = updates(500_000);
    let spec = SketchSpec::l0("ganguly-l0", EPS, UNIVERSE, SEED);
    let (stats, drive, merged_bytes) = serve_and_drive(
        &spec,
        split(&stream, SESSIONS),
        256,
        None,
        |spec| L0ClusterAggregator::spawn(&config(2), spec).expect("spawn fleet"),
        SessionServeOptions::default(),
    );

    assert_eq!(stats.sessions_served, SESSIONS, "{stats:?}");
    assert_eq!(stats.updates_ingested, stream.len() as u64);
    assert_eq!(drive.sessions, SESSIONS);

    let merged = l0_shard_from_bytes(&spec, &merged_bytes).expect("merged shard decodes");
    let mut single = build_l0(&spec).expect("zoo name");
    single.update_batch(&stream);
    assert_eq!(
        merged.estimate().to_bits(),
        single.estimate().to_bits(),
        "1k interleaved turnstile sessions must be bit-identical"
    );
}

/// Every estimator in both zoos round-trips through concurrent sessions
/// bit-identically (smaller session counts; the 1k soaks above are the
/// scale proof).
#[test]
fn every_zoo_member_serves_concurrent_sessions_bit_identically() {
    let f0_stream = items(20_000);
    for &name in f0_estimator_names() {
        let spec = SketchSpec::f0(name, EPS, UNIVERSE, SEED);
        let (stats, _, merged_bytes) = serve_and_drive(
            &spec,
            split(&f0_stream, 16),
            333,
            None,
            |spec| F0ClusterAggregator::spawn(&config(2), spec).expect("spawn fleet"),
            SessionServeOptions::default(),
        );
        assert_eq!(stats.sessions_served, 16, "{name}: {stats:?}");
        let merged = f0_shard_from_bytes(&spec, &merged_bytes).expect("merged shard decodes");
        let mut single = build_f0(&spec).expect("zoo name");
        single.insert_batch(&f0_stream);
        assert_eq!(
            merged.estimate().to_bits(),
            single.estimate().to_bits(),
            "{name} deviates from the single-process run"
        );
    }

    let l0_stream = updates(20_000);
    for &name in l0_estimator_names() {
        let spec = SketchSpec::l0(name, EPS, UNIVERSE, SEED);
        let (stats, _, merged_bytes) = serve_and_drive(
            &spec,
            split(&l0_stream, 16),
            271,
            None,
            |spec| L0ClusterAggregator::spawn(&config(2), spec).expect("spawn fleet"),
            SessionServeOptions::default(),
        );
        assert_eq!(stats.sessions_served, 16, "{name}: {stats:?}");
        let merged = l0_shard_from_bytes(&spec, &merged_bytes).expect("merged shard decodes");
        let mut single = build_l0(&spec).expect("zoo name");
        single.update_batch(&l0_stream);
        assert_eq!(
            merged.estimate().to_bits(),
            single.estimate().to_bits(),
            "{name} deviates from the single-process run"
        );
    }
}

/// Midstream `Snapshot` requests are answered with point-in-time merged
/// shards while the sessions keep streaming, and the final estimate is
/// unaffected by how often sessions snapshot.
#[test]
fn midstream_snapshots_are_served_without_disturbing_the_aggregate() {
    let stream = items(40_000);
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let (stats, drive, merged_bytes) = serve_and_drive(
        &spec,
        split(&stream, 32),
        250,
        Some(2),
        |spec| F0ClusterAggregator::spawn(&config(2), spec).expect("spawn fleet"),
        SessionServeOptions::default(),
    );
    assert_eq!(stats.sessions_served, 32, "{stats:?}");
    assert!(
        drive.shard_replies > 32,
        "midstream snapshots must add shard replies: {drive:?}"
    );
    assert_eq!(stats.snapshots_served, drive.shard_replies as u64);

    let merged = f0_shard_from_bytes(&spec, &merged_bytes).expect("merged shard decodes");
    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// A client whose `Hello` carries the wrong spec is refused with a typed
/// `Err` frame instead of silently polluting the shared aggregate.
#[test]
fn spec_mismatch_is_refused_with_a_typed_err_frame() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let serve_spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let mut aggregator = F0ClusterAggregator::spawn(&config(2), &serve_spec).expect("spawn fleet");
    let options = SessionServeOptions::default().with_max_sessions(1);
    let server = std::thread::spawn(move || {
        let stats = serve_sessions(&listener, &mut aggregator, &options).expect("serve");
        drop(aggregator);
        stats
    });

    let wrong_spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED + 1);
    let streams = vec![items(100)];
    let err = drive_sessions::<u64>(&addr, &wrong_spec, &streams, 64, None, DEADLINE)
        .expect_err("mismatched spec must be refused");
    match err {
        ClusterError::WorkerReported { message, .. } => {
            assert!(message.contains("spec"), "unexpected message: {message}");
        }
        other => panic!("expected WorkerReported, got {other}"),
    }
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions_errored, 1, "{stats:?}");
}

/// The serve-side half of the desync taxonomy: a client that sends half a
/// frame and then stalls is surfaced as a *desynchronized* session — a
/// typed `Err` frame naming the mid-frame stall, never a misparse or a
/// hang.
#[test]
fn mid_frame_client_stall_is_surfaced_as_desync() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let mut aggregator = F0ClusterAggregator::spawn(&config(2), &spec).expect("spawn fleet");
    let options = SessionServeOptions::default()
        .with_max_sessions(1)
        .with_idle_timeout(Some(Duration::from_millis(300)));
    let server = std::thread::spawn(move || {
        let stats = serve_sessions(&listener, &mut aggregator, &options).expect("serve");
        drop(aggregator);
        stats
    });

    let mut client = TcpStream::connect(addr).expect("connect");
    let mut hello = Vec::new();
    write_frame(
        &mut hello,
        &Frame::Hello(knw_cluster::HelloConfig {
            worker_index: 0,
            spec: spec.clone(),
        }),
    )
    .expect("encode hello");
    let mut batch = Vec::new();
    write_frame(&mut batch, &Frame::Batch(u64::payload(vec![1, 2, 3, 4]))).expect("encode batch");
    client.write_all(&hello).expect("send hello");
    // Half a Batch frame, then silence: the session is now mid-frame.
    client
        .write_all(&batch[..batch.len() / 2])
        .expect("half frame");
    client.flush().expect("flush");

    let reply = read_frame(&mut client)
        .expect("typed Err frame, not a hang")
        .expect("a frame, not EOF");
    match reply {
        Frame::Err(message) => {
            assert!(
                message.contains("mid-frame") && message.contains("desynchronized"),
                "the Err frame must name the desync, got: {message}"
            );
        }
        other => panic!("expected Err frame, got {}", other.kind()),
    }
    drop(client);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions_errored, 1, "{stats:?}");
    assert_eq!(stats.sessions_served, 0, "{stats:?}");
}

/// An idle session that is *between* frames gets the plain idle-timeout
/// message — the taxonomy's other half.
#[test]
fn between_frames_idle_is_a_plain_timeout_not_a_desync() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let mut aggregator = F0ClusterAggregator::spawn(&config(2), &spec).expect("spawn fleet");
    let options = SessionServeOptions::default()
        .with_max_sessions(1)
        .with_idle_timeout(Some(Duration::from_millis(300)));
    let server = std::thread::spawn(move || {
        serve_sessions(&listener, &mut aggregator, &options).expect("serve")
    });

    let mut client = TcpStream::connect(addr).expect("connect");
    let mut hello = Vec::new();
    write_frame(
        &mut hello,
        &Frame::Hello(knw_cluster::HelloConfig {
            worker_index: 0,
            spec: spec.clone(),
        }),
    )
    .expect("encode hello");
    client.write_all(&hello).expect("send hello");
    client.flush().expect("flush");
    // Complete frames only, then silence.

    let reply = read_frame(&mut client)
        .expect("typed Err frame")
        .expect("a frame, not EOF");
    match reply {
        Frame::Err(message) => {
            assert!(
                message.contains("idle timeout") && !message.contains("desynchronized"),
                "a between-frames stall is idle, not desynced, got: {message}"
            );
        }
        other => panic!("expected Err frame, got {}", other.kind()),
    }
    drop(client);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions_errored, 1, "{stats:?}");
}

/// Regression: on an otherwise-quiet server the poll wait is clamped to the
/// nearest session deadline, so an idle session is reaped promptly after
/// `idle_timeout` — not a whole fallback tick (2 s) later.  Idle deadlines
/// are only *checked* when the wait returns; before the clamp, nothing woke
/// the loop on a quiet server until the tick expired.
#[test]
fn idle_sessions_are_reaped_promptly_on_a_quiet_server() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let mut aggregator = F0ClusterAggregator::spawn(&config(2), &spec).expect("spawn fleet");
    let options = SessionServeOptions::default()
        .with_max_sessions(1)
        .with_idle_timeout(Some(Duration::from_millis(300)));
    let server = std::thread::spawn(move || {
        serve_sessions(&listener, &mut aggregator, &options).expect("serve")
    });

    let mut client = TcpStream::connect(addr).expect("connect");
    let mut hello = Vec::new();
    write_frame(
        &mut hello,
        &Frame::Hello(knw_cluster::HelloConfig {
            worker_index: 0,
            spec: spec.clone(),
        }),
    )
    .expect("encode hello");
    client.write_all(&hello).expect("send hello");
    client.flush().expect("flush");
    // Quiet from here on: no more frames, no other sessions, no readiness.
    let idle_since = Instant::now();

    let reply = read_frame(&mut client)
        .expect("typed Err frame")
        .expect("a frame, not EOF");
    let elapsed = idle_since.elapsed();
    match reply {
        Frame::Err(message) => {
            assert!(message.contains("idle timeout"), "got: {message}");
        }
        other => panic!("expected Err frame, got {}", other.kind()),
    }
    assert!(
        elapsed >= Duration::from_millis(250),
        "reaped before the idle deadline: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_millis(1_400),
        "idle reap waited for the fallback tick, not the deadline: {elapsed:?}"
    );
    drop(client);
    let stats = server.join().expect("server thread");
    assert_eq!(stats.sessions_errored, 1, "{stats:?}");
}
