//! Property-based robustness tests of the frame decoder: whatever the wire
//! does to a frame — truncation anywhere, bit flips anywhere, oversized
//! length prefixes, raw byte soup — `read_frame` must return a typed
//! [`WireError`] or a valid frame, must never panic, and must never read
//! past the boundary the length prefix declares (no over-read into the
//! next frame's bytes).
//!
//! These are the guarantees the transports lean on: a crashed or malicious
//! peer can corrupt its own session, never the survivor's process.

use knw_cluster::{
    read_frame, write_frame, BatchPayload, Frame, HelloConfig, SketchSpec, WireError, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use std::io::Read;

/// A reader that counts consumed bytes, to prove `read_frame` never reads
/// past the declared frame boundary.
struct CountingReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> CountingReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (&self.data[self.pos..]).read(buf)?;
        self.pos += n;
        Ok(n)
    }
}

/// Builds one frame of every protocol shape from drawn parameters.
fn arbitrary_frame(kind: u64, a: u64, payload: &[u8]) -> Frame {
    let names = knw_cluster::f0_estimator_names();
    match kind % 8 {
        0 => Frame::Hello(HelloConfig {
            worker_index: a,
            spec: SketchSpec::f0(names[(a % names.len() as u64) as usize], 0.1, 1 << 16, a),
        }),
        1 if a.is_multiple_of(2) => Frame::Batch(BatchPayload::Items(
            payload.iter().map(|&b| u64::from(b)).collect(),
        )),
        1 => Frame::Batch(BatchPayload::Updates(
            payload
                .iter()
                .map(|&b| (u64::from(b), i64::from(b as i8)))
                .collect(),
        )),
        2 => Frame::Snapshot,
        3 => Frame::Finish,
        4 => Frame::Shard(payload.to_vec()),
        5 => Frame::Err(String::from_utf8_lossy(payload).into_owned()),
        6 => Frame::Restore(payload.to_vec()),
        _ => Frame::Register(String::from_utf8_lossy(payload).into_owned()),
    }
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, frame).expect("encode");
    wire
}

/// The payload length the (possibly corrupted) prefix declares.
fn declared_len(wire: &[u8]) -> usize {
    u32::from_le_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize
}

/// Decodes one frame while checking the no-over-read property: however the
/// bytes were mangled, the decoder consumes at most the four prefix bytes
/// plus the payload length the prefix declares.
fn decode_checked(wire: &[u8]) -> Result<Option<Frame>, WireError> {
    let mut reader = CountingReader::new(wire);
    let result = read_frame(&mut reader);
    if wire.len() >= 4 {
        let budget = 4usize.saturating_add(declared_len(wire));
        assert!(
            reader.pos <= budget,
            "decoder consumed {} bytes of a frame declaring {} payload bytes",
            reader.pos,
            declared_len(wire)
        );
    } else {
        assert!(reader.pos <= wire.len());
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A valid frame decodes back to itself, and the decoder consumes
    /// exactly the frame's bytes — nothing of whatever follows on the wire.
    #[test]
    fn valid_frames_round_trip_and_consume_exactly_their_bytes(
        kind in 0u64..8,
        a in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..48),
        trailing in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let frame = arbitrary_frame(kind, a, &payload);
        let mut wire = encode(&frame);
        let frame_len = wire.len();
        wire.extend_from_slice(&trailing);
        let mut reader = CountingReader::new(&wire);
        let decoded = read_frame(&mut reader).expect("valid frame").expect("one frame");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(reader.pos, frame_len);
    }

    /// Truncating a valid frame anywhere — inside the prefix, inside the
    /// payload — yields a typed error, never a panic and never a bogus
    /// frame.
    #[test]
    fn truncation_anywhere_is_a_typed_error(
        kind in 0u64..8,
        a in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..48),
        cut_seed in any::<u64>(),
    ) {
        let wire = encode(&arbitrary_frame(kind, a, &payload));
        let cut = 1 + (cut_seed % (wire.len() as u64 - 1)) as usize;
        match decode_checked(&wire[..cut]) {
            Err(WireError::Truncated | WireError::Codec(_)) => {}
            other => prop_assert!(false, "cut {} of {}: unexpected {:?}", cut, wire.len(), other),
        }
    }

    /// Flipping any single bit of a valid frame never panics and never
    /// over-reads; whatever comes back is a typed error or a (different
    /// but well-formed) frame.
    #[test]
    fn bit_flips_never_panic_and_never_overread(
        kind in 0u64..8,
        a in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..48),
        flip_seed in any::<u64>(),
    ) {
        let mut wire = encode(&arbitrary_frame(kind, a, &payload));
        let bit = (flip_seed % (wire.len() as u64 * 8)) as usize;
        wire[bit / 8] ^= 1 << (bit % 8);
        // Flipping a high prefix bit may declare an absurd length: that
        // exact case must come back as the typed Oversized error.
        let oversized = declared_len(&wire) > MAX_FRAME_LEN;
        match decode_checked(&wire) {
            Err(WireError::Oversized { declared }) => {
                prop_assert!(oversized, "spurious Oversized({declared})");
            }
            Err(WireError::Truncated | WireError::Codec(_)) | Ok(Some(_)) => {
                prop_assert!(!oversized, "an oversized declaration must be rejected");
            }
            other => prop_assert!(false, "bit {}: unexpected {:?}", bit, other),
        }
    }

    /// A length prefix above `MAX_FRAME_LEN` is rejected as `Oversized` no
    /// matter what follows — the decoder must not trust it into an
    /// unbounded allocation or a long blocking read.
    #[test]
    fn oversized_declarations_are_rejected(
        excess in 1u64..=(u32::MAX as u64 - MAX_FRAME_LEN as u64),
        junk in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let declared = MAX_FRAME_LEN as u64 + excess;
        let mut wire = (declared as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&junk);
        match decode_checked(&wire) {
            Err(WireError::Oversized { declared: seen }) => {
                prop_assert_eq!(seen, declared);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Raw byte soup — no structure at all — never panics the decoder and
    /// never over-reads; every outcome is `Ok` or a typed error.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Every path through the decoder is acceptable except a panic or
        // an over-read, both checked inside decode_checked.
        let _ = decode_checked(&bytes);
    }

    /// Corrupting the frame's variant tag to anything outside the enum is
    /// a typed codec rejection.
    #[test]
    fn unknown_variant_tags_are_codec_errors(tag in 8u32..u32::MAX) {
        let mut wire = encode(&Frame::Finish);
        wire[4..8].copy_from_slice(&tag.to_le_bytes());
        match decode_checked(&wire) {
            Err(WireError::Codec(_)) => {}
            other => prop_assert!(false, "tag {}: unexpected {:?}", tag, other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The resumable decoder agrees with the blocking decoder on every
    /// frame shape, under the most adversarial delivery the wire can
    /// produce: one byte at a time.  A sequence of valid frames fed to a
    /// [`FrameDecoder`](knw_cluster::FrameDecoder) byte-by-byte yields
    /// exactly the frames `read_frame` yields from the same bytes, in
    /// order, with the decoder mid-frame at every strictly interior cut
    /// and empty at every frame boundary.
    #[test]
    fn byte_at_a_time_decoding_equals_read_frame(
        shapes in prop::collection::vec((0u64..8, any::<u64>()), 1..6),
        payload in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let frames: Vec<Frame> = shapes
            .iter()
            .map(|&(kind, a)| arbitrary_frame(kind, a, &payload))
            .collect();
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&encode(frame));
        }

        // The blocking reference: read_frame over the concatenated bytes.
        let mut reader = CountingReader::new(&wire);
        let mut reference = Vec::new();
        while let Some(frame) = read_frame(&mut reader).expect("valid stream") {
            reference.push(frame);
            if reader.pos == wire.len() {
                break;
            }
        }
        prop_assert_eq!(&reference, &frames);

        // The resumable decoder, fed one byte at a time.
        let mut decoder = knw_cluster::FrameDecoder::new();
        let mut streamed = Vec::new();
        for (i, &byte) in wire.iter().enumerate() {
            decoder.push(std::slice::from_ref(&byte));
            while let Some(frame) = decoder.next_frame().expect("valid byte") {
                streamed.push(frame);
            }
            let boundary = streamed.iter().map(|f| encode(f).len()).sum::<usize>() == i + 1;
            prop_assert_eq!(
                decoder.mid_frame(),
                !boundary,
                "mid_frame wrong after byte {}",
                i
            );
        }
        prop_assert_eq!(streamed, frames);
        prop_assert!(!decoder.mid_frame(), "decoder must end empty");
    }
}
