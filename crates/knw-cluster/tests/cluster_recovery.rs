//! The reconnect-and-replay acceptance tests: killing a TCP worker
//! mid-stream and recovering it — by re-dialing the same address, by
//! re-resolving onto a `--register`ed spare host, or by re-spawning a pipe
//! child — yields results **bit-identical** to the single-process run for
//! every estimator in both the F0 and L0 zoos, under both routing
//! policies; and when recovery *cannot* succeed, the failure is typed
//! (`RecoveryExhausted`, `JournalOverflow`) and bounded — never a hang,
//! never a partial merge.
//!
//! Runs in CI (`cargo test -p knw-cluster --test cluster_recovery`, plain
//! and `--features serde`); needs only process spawning and loopback.

use knw_cluster::{
    build_f0, build_l0, f0_estimator_names, l0_estimator_names, spawn_listening_worker,
    ClusterConfig, ClusterError, F0ClusterAggregator, L0ClusterAggregator, ListeningWorkerFleet,
    RecoveryPolicy, SketchSpec, TcpClusterConfig, WorkerRegistry,
};
use knw_engine::{EngineConfig, RoutingPolicy};
use proptest::prelude::*;
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER_EXE: &str = env!("CARGO_BIN_EXE_knw-worker");
const EPS: f64 = 0.1;
const UNIVERSE: u64 = 1 << 16;
const SEED: u64 = 4242;

/// A spare worker process, reaped on drop (test panics must not leak
/// forever-serving strays).
struct Spare(Child);

impl Drop for Spare {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a spare `--listen --register` worker and waits until its
/// announcement landed in the registry.
fn spawn_registered_spare(registry: &WorkerRegistry) -> Spare {
    let registry_addr = registry.local_addr().to_string();
    let before = registry.available();
    let (child, _) = spawn_listening_worker(
        WORKER_EXE.as_ref(),
        "127.0.0.1:0",
        &["--register", &registry_addr],
    )
    .expect("spawn spare worker");
    for _ in 0..400 {
        if registry.available() > before {
            return Spare(child);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("spare worker never registered");
}

/// A fast-failing recovery policy for tests: retries stay bounded in
/// wall-clock even when every attempt must time out.
fn test_policy() -> RecoveryPolicy {
    RecoveryPolicy::default()
        .with_max_retries(4)
        .with_backoff(Duration::from_millis(50))
}

fn tcp_config(
    addrs: &[String],
    routing: RoutingPolicy,
    registry: Option<Arc<WorkerRegistry>>,
) -> TcpClusterConfig {
    let mut config = TcpClusterConfig::new(addrs.iter().cloned())
        .with_engine(
            EngineConfig::new(addrs.len())
                .with_batch_size(512)
                .with_routing(routing),
        )
        .with_recovery(test_policy());
    if let Some(registry) = registry {
        config = config.with_registry(registry);
    }
    config
}

/// A skewed insert-only stream.
fn items(len: u64) -> Vec<u64> {
    (0..len)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % UNIVERSE)
        .collect()
}

/// A churn-heavy signed update stream (mixed signs, cancellations).
fn updates(len: u64) -> Vec<(u64, i64)> {
    (0..len)
        .map(|i| {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x % 4_096, (x % 9) as i64 - 4)
        })
        .collect()
}

/// Lets a killed worker's FIN/RST reach the aggregator's socket before the
/// stream continues, so the fault is observed deterministically.
fn let_fault_propagate() {
    std::thread::sleep(Duration::from_millis(100));
}

/// Acceptance criterion, F0 half: for every estimator in the zoo and both
/// routing policies, killing a TCP worker **process** mid-stream and
/// recovering onto a freshly `--register`ed spare host leaves the final
/// merged estimate bit-identical to the single-process run.
#[test]
fn killed_worker_recovery_is_bit_identical_for_every_f0_estimator() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 3 },
    ] {
        for &name in f0_estimator_names() {
            let mut fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 3)
                .expect("spawn fleet");
            let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
            let _spare = spawn_registered_spare(&registry);

            let spec = SketchSpec::f0(name, EPS, UNIVERSE, SEED);
            let stream = items(12_000);
            let mut cluster = F0ClusterAggregator::connect(
                &tcp_config(fleet.addrs(), routing, Some(Arc::clone(&registry))),
                &spec,
            )
            .expect("connect 3 workers");
            let (first, rest) = stream.split_at(stream.len() / 2);
            for chunk in first.chunks(1_111) {
                cluster.ingest_batch(chunk);
            }
            fleet.kill(1).expect("kill worker process");
            let_fault_propagate();
            for chunk in rest.chunks(1_111) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("recovered run reports cleanly");

            let mut single = build_f0(&spec).expect("zoo name");
            single.insert_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates after kill-and-replay recovery ({routing:?})"
            );
        }
    }
}

/// Acceptance criterion, L0 half: same property over signed turnstile
/// streams for every estimator in the L0 zoo under both routing policies.
#[test]
fn killed_worker_recovery_is_bit_identical_for_every_l0_estimator() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 9 },
    ] {
        for &name in l0_estimator_names() {
            let mut fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 3)
                .expect("spawn fleet");
            let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
            let _spare = spawn_registered_spare(&registry);

            let spec = SketchSpec::l0(name, EPS, UNIVERSE, SEED);
            let stream = updates(12_000);
            let mut cluster = L0ClusterAggregator::connect(
                &tcp_config(fleet.addrs(), routing, Some(Arc::clone(&registry))),
                &spec,
            )
            .expect("connect 3 workers");
            let (first, rest) = stream.split_at(stream.len() / 2);
            for chunk in first.chunks(999) {
                cluster.ingest_batch(chunk);
            }
            fleet.kill(0).expect("kill worker process");
            let_fault_propagate();
            for chunk in rest.chunks(999) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("recovered run reports cleanly");

            let mut single = build_l0(&spec).expect("zoo name");
            single.update_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates after kill-and-replay recovery ({routing:?})"
            );
        }
    }
}

/// Snapshots double as journal checkpoints: after an acknowledged snapshot
/// the journal holds only the batches since, and recovery of a later fault
/// replays `Restore{checkpoint}` + the tail — exercised here with a journal
/// cap too small to have held the whole stream, so only the checkpoint
/// path can make recovery succeed.
#[test]
fn snapshot_checkpoint_keeps_recovery_exact_beyond_the_journal_cap() {
    let fleet =
        ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2).expect("spawn fleet");
    let spec = SketchSpec::l0("knw-l0", EPS, 1 << 12, 7);
    let stream = updates(8_000);
    let config = TcpClusterConfig::new(fleet.addrs().iter().cloned())
        .with_engine(EngineConfig::new(2).with_batch_size(256))
        .with_recovery(test_policy().with_journal_cap(3_000));
    let mut cluster = L0ClusterAggregator::connect(&config, &spec).expect("connect");
    let mut single = build_l0(&spec).expect("zoo name");

    // First half: 4000 updates ≈ 2000 per shard — inside the cap.
    let (first, rest) = stream.split_at(4_000);
    cluster.ingest_batch(first);
    single.update_batch(first);
    // The acknowledged snapshot truncates both journals to checkpoints.
    assert_eq!(
        cluster.estimate().expect("snapshot").to_bits(),
        single.estimate().to_bits()
    );
    // Second half, then sever worker 1's connection: recovery must restore
    // the checkpoint and replay only the post-snapshot tail.
    cluster.ingest_batch(&rest[..2_000]);
    single.update_batch(&rest[..2_000]);
    cluster.kill_worker(1).expect("sever connection");
    let_fault_propagate();
    cluster.ingest_batch(&rest[2_000..]);
    single.update_batch(&rest[2_000..]);
    let merged = cluster.finish().expect("checkpointed recovery");
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// A journal that had to be discarded for its bound refuses recovery with
/// the typed `JournalOverflow` naming the worker and the cap — never a
/// silent partial merge.
#[test]
fn journal_overflow_is_a_typed_refusal() {
    let fleet =
        ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2).expect("spawn fleet");
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let config = TcpClusterConfig::new(fleet.addrs().iter().cloned())
        .with_engine(EngineConfig::new(2).with_batch_size(64))
        .with_recovery(test_policy().with_journal_cap(100));
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect");
    // Far beyond the cap, with no snapshot to truncate: journals overflow.
    cluster.ingest_batch(&items(4_000));
    cluster.kill_worker(0).expect("sever connection");
    let_fault_propagate();
    cluster.ingest_batch(&items(4_000));
    match cluster.finish() {
        Err(ClusterError::JournalOverflow { worker: 0, cap }) => assert_eq!(cap, 100),
        Err(other) => panic!("expected JournalOverflow, got {other:?}"),
        Ok(_) => panic!("an unreplayable shard must not report"),
    }
}

/// When the worker process is gone, nothing re-listens on its address and
/// no spare is registered, recovery exhausts its bounded retries and
/// surfaces the typed `RecoveryExhausted` — promptly, and stickily (a
/// retried report refuses with the same error instead of hanging or
/// merging a partial cluster).
#[test]
fn exhausted_recovery_is_typed_bounded_and_sticky() {
    let mut fleet =
        ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2).expect("spawn fleet");
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let config = tcp_config(fleet.addrs(), RoutingPolicy::RoundRobin, None);
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect");
    cluster.ingest_batch(&items(3_000));
    fleet.kill(1).expect("kill worker process");
    let_fault_propagate();
    let started = Instant::now();
    cluster.ingest_batch(&items(3_000));
    match cluster.snapshot().map(|_| "a shard") {
        Err(ClusterError::RecoveryExhausted {
            worker: 1,
            attempts,
            ..
        }) => assert_eq!(attempts, 4),
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "exhausted recovery took {:?} to surface",
        started.elapsed()
    );
    // Sticky: the aggregator stays refused, with the same typed error.
    match cluster.snapshot().map(|_| "a shard") {
        Err(ClusterError::RecoveryExhausted { worker: 1, .. }) => {}
        other => panic!("expected a sticky RecoveryExhausted, got {other:?}"),
    }
}

/// The pipe transport recovers by re-*spawning* a child process and
/// replaying the journal into it — same contract, no sockets involved.
#[test]
fn pipe_transport_recovers_by_respawning_the_child() {
    let config = ClusterConfig::new(3, WORKER_EXE)
        .with_engine(EngineConfig::new(3).with_batch_size(512))
        .with_recovery(test_policy());
    let spec = SketchSpec::l0("knw-l0", EPS, 1 << 12, 11);
    let stream = updates(9_000);
    let mut cluster = L0ClusterAggregator::spawn(&config, &spec).expect("spawn");
    let (first, rest) = stream.split_at(stream.len() / 2);
    cluster.ingest_batch(first);
    cluster.kill_worker(2).expect("kill child process");
    cluster.ingest_batch(rest);
    let merged = cluster.finish().expect("respawned recovery");
    let mut single = build_l0(&spec).expect("zoo name");
    single.update_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Recovery edge ordering, property-based: a random fault schedule —
    /// sever worker `w`'s link after chunk `k`, keep streaming, snapshot at
    /// chunk `s` (possibly *while* the journal is still pending replay,
    /// possibly before the kill) — must leave **every** snapshot and the
    /// final report bit-identical to the single-process prefix folds.
    /// Reports wait for the in-flight recovery; a partial merge is never
    /// produced.
    #[test]
    fn fault_schedules_report_exact_prefixes(
        kill_chunk in 0usize..10,
        worker in 0usize..3,
        snap_chunk in 0usize..10,
        routing_seed in 0u64..4,
    ) {
        let routing = if routing_seed.is_multiple_of(2) {
            RoutingPolicy::RoundRobin
        } else {
            RoutingPolicy::HashAffine { seed: routing_seed }
        };
        let fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 3)
            .expect("spawn fleet");
        let spec = SketchSpec::l0("knw-l0", EPS, 1 << 12, 13);
        let stream = updates(5_000);
        let mut cluster = L0ClusterAggregator::connect(
            &tcp_config(fleet.addrs(), routing, None),
            &spec,
        )
        .expect("connect 3 workers");
        let mut single = build_l0(&spec).expect("zoo name");

        for (chunk_index, chunk) in stream.chunks(500).enumerate() {
            cluster.ingest_batch(chunk);
            single.update_batch(chunk);
            if chunk_index == kill_chunk {
                cluster.kill_worker(worker).expect("sever link");
                let_fault_propagate();
            }
            if chunk_index == snap_chunk {
                // The snapshot may land mid-replay: it must wait for the
                // recovery and report the exact prefix, never a partial
                // cluster.
                let snapshot = cluster.estimate().expect("snapshot during fault schedule");
                prop_assert_eq!(
                    snapshot.to_bits(),
                    single.estimate().to_bits(),
                    "snapshot diverged (kill at {}, snap at {}, worker {})",
                    kill_chunk,
                    snap_chunk,
                    worker
                );
            }
        }
        let merged = cluster.finish().expect("clean recovered finish");
        prop_assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
    }
}

/// The spare-pool liveness probe: `take_address` order is FIFO, so
/// without a probe, recovery would adopt the *first* registered spare
/// even when it is dead — and a dead spare is not always a refused
/// connect (a kernel listen backlog happily completes handshakes for a
/// process that will never serve).  With the pool deliberately fronted
/// by a backlog-only fake and a killed spare, a **single** recovery
/// attempt must skip both and land on the live spare — bit-identically.
#[test]
fn recovery_probes_spares_and_lands_on_the_live_one() {
    use knw_cluster::register_worker;
    let mut fleet =
        ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2).expect("spawn fleet");
    let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
    let registry_addr = registry.local_addr().to_string();

    // Spare 1 (popped first): a listen backlog with no serve loop behind
    // it — connects succeed, the probe's greeting goes unanswered.
    let backlog_only = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake spare");
    let fake_addr = backlog_only.local_addr().expect("addr").to_string();
    register_worker(&registry_addr, &fake_addr).expect("register fake spare");
    // The announcement is processed by the registry's accept thread;
    // wait for it so the fake is guaranteed to be popped first.
    for _ in 0..400 {
        if registry.available() >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(registry.available(), 1, "fake spare queued first");
    // Spare 2: a real worker, registered and then killed — its connect is
    // refused outright.
    let killed = spawn_registered_spare(&registry);
    drop(killed);
    // Spare 3: the live one recovery must land on.
    let _live = spawn_registered_spare(&registry);
    assert_eq!(registry.available(), 3, "all three spares queued");

    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let stream = items(12_000);
    // max_retries = 1: the single allowed attempt must already skip the
    // dead spares via the probe — burning the attempt on the backlog-only
    // fake (a replay whose reply never comes) would exhaust recovery.
    let config = TcpClusterConfig::new(fleet.addrs().iter().cloned())
        .with_engine(EngineConfig::new(fleet.addrs().len()).with_batch_size(512))
        .with_recovery(
            RecoveryPolicy::default()
                .with_max_retries(1)
                .with_backoff(Duration::from_millis(50)),
        )
        .with_registry(Arc::clone(&registry))
        .with_io_timeout(Some(Duration::from_millis(400)));
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect 2 workers");

    let (first, rest) = stream.split_at(stream.len() / 2);
    for chunk in first.chunks(1_111) {
        cluster.ingest_batch(chunk);
    }
    fleet.kill(0).expect("kill worker process");
    let_fault_propagate();
    for chunk in rest.chunks(1_111) {
        cluster.ingest_batch(chunk);
    }
    let merged = cluster.finish().expect("recovery lands on the live spare");

    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(
        merged.estimate().to_bits(),
        single.estimate().to_bits(),
        "recovered run must stay bit-identical"
    );
}
