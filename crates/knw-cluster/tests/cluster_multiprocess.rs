//! The acceptance-criterion integration test: a 4-worker **multi-process**
//! run — real spawned child processes exchanging serialized shards over the
//! frame protocol — produces estimates bit-identical to the single-stream
//! run for every estimator in both the F0 and L0 zoos.
//!
//! Runs in CI (`cargo test -p knw-cluster`); needs nothing but process
//! spawning.  `CARGO_BIN_EXE_knw-worker` points at the worker binary cargo
//! builds alongside these tests.

use knw_cluster::{
    build_f0, build_l0, f0_estimator_names, l0_estimator_names, ClusterConfig, ClusterError,
    F0ClusterAggregator, L0ClusterAggregator, SketchSpec,
};
use knw_engine::{EngineConfig, RoutingPolicy};

const WORKER_EXE: &str = env!("CARGO_BIN_EXE_knw-worker");
const EPS: f64 = 0.1;
const UNIVERSE: u64 = 1 << 16;
const SEED: u64 = 2026;

fn config(workers: usize, routing: RoutingPolicy, precoalesce: bool) -> ClusterConfig {
    ClusterConfig::new(workers, WORKER_EXE).with_engine(
        EngineConfig::new(workers)
            .with_batch_size(1024)
            .with_routing(routing)
            .with_precoalesce(precoalesce),
    )
}

/// A skewed insert-only stream.
fn items(len: u64) -> Vec<u64> {
    (0..len)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % UNIVERSE)
        .collect()
}

/// A churn-heavy signed update stream (mixed signs, cancellations).
fn updates(len: u64) -> Vec<(u64, i64)> {
    (0..len)
        .map(|i| {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x % 4_096, (x % 9) as i64 - 4)
        })
        .collect()
}

/// Acceptance criterion, F0 half: for every estimator in the zoo, 4 worker
/// processes + merge == one process, bit for bit, under both routing
/// policies.
#[test]
fn four_process_run_is_bit_identical_for_every_f0_estimator() {
    let stream = items(20_000);
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 3 },
    ] {
        for &name in f0_estimator_names() {
            let spec = SketchSpec::f0(name, EPS, UNIVERSE, SEED);
            let mut cluster = F0ClusterAggregator::spawn(&config(4, routing, false), &spec)
                .expect("spawn 4 workers");
            for chunk in stream.chunks(3_331) {
                cluster.ingest_batch(chunk);
            }
            assert_eq!(cluster.items_ingested(), stream.len() as u64);
            let merged = cluster.finish().expect("clean 4-process run");

            let mut single = build_f0(&spec).expect("zoo name");
            single.insert_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates from the single-process run ({routing:?})"
            );
        }
    }
}

/// Acceptance criterion, L0 half: same property over signed turnstile
/// streams — including hash-affine (by-item) routing and aggregator-side
/// pre-coalescing, both of which must leave the estimate bit-identical.
#[test]
fn four_process_run_is_bit_identical_for_every_l0_estimator() {
    let stream = updates(20_000);
    for (routing, precoalesce) in [
        (RoutingPolicy::RoundRobin, false),
        (RoutingPolicy::RoundRobin, true),
        (RoutingPolicy::HashAffine { seed: 9 }, false),
    ] {
        for &name in l0_estimator_names() {
            let spec = SketchSpec::l0(name, EPS, UNIVERSE, SEED);
            let mut cluster = L0ClusterAggregator::spawn(&config(4, routing, precoalesce), &spec)
                .expect("spawn 4 workers");
            for chunk in stream.chunks(2_777) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("clean 4-process run");

            let mut single = build_l0(&spec).expect("zoo name");
            single.update_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates from the single-process run \
                 ({routing:?}, precoalesce {precoalesce})"
            );
        }
    }
}

/// Midstream reporting: a snapshot (serialized shards + locally buffered
/// updates) reproduces the single-process prefix estimate exactly, and the
/// cluster keeps running afterwards.
#[test]
fn midstream_snapshots_track_the_stream_exactly() {
    let spec = SketchSpec::f0("knw-f0", 0.05, 1 << 20, 11);
    let stream = items(30_000);
    let mut cluster =
        F0ClusterAggregator::spawn(&config(3, RoutingPolicy::RoundRobin, false), &spec)
            .expect("spawn");
    let mut single = build_f0(&spec).expect("zoo name");
    for (round, chunk) in stream.chunks(10_000).enumerate() {
        cluster.ingest_batch(chunk);
        single.insert_batch(chunk);
        assert_eq!(
            cluster.estimate().expect("snapshot").to_bits(),
            single.estimate().to_bits(),
            "snapshot diverged in round {round}"
        );
    }
    let merged = cluster.finish().expect("clean finish");
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// Fault injection: killing a worker mid-stream surfaces a typed
/// `WorkerDied` (the multi-process mirror of `SketchError::ShardPanicked`)
/// instead of a silent undercount or a hang.
#[test]
fn killed_worker_surfaces_worker_died() {
    let spec = SketchSpec::l0("knw-l0", 0.2, 1 << 12, 5);
    let mut cluster =
        L0ClusterAggregator::spawn(&config(4, RoutingPolicy::RoundRobin, false), &spec)
            .expect("spawn");
    cluster.ingest_batch(&updates(5_000));
    cluster.kill_worker(2).expect("kill");
    // Keep streaming; the broken pipe is detected on write or at finish.
    cluster.ingest_batch(&updates(5_000));
    match cluster.finish() {
        Err(ClusterError::WorkerDied { worker }) => assert_eq!(worker, 2),
        Err(other) => panic!("expected WorkerDied, got {other:?}"),
        Ok(_) => panic!("a run missing a shard must not report"),
    }
}

/// A spec naming a sketch outside the zoo is rejected before any process
/// is spawned.
#[test]
fn unknown_estimator_fails_fast_without_spawning() {
    let spec = SketchSpec::f0("no-such-sketch", EPS, UNIVERSE, SEED);
    match F0ClusterAggregator::spawn(&config(2, RoutingPolicy::RoundRobin, false), &spec) {
        Err(ClusterError::UnknownEstimator { name }) => assert_eq!(name, "no-such-sketch"),
        Err(other) => panic!("expected UnknownEstimator, got {other:?}"),
        Ok(_) => panic!("bogus spec must not spawn"),
    }
}

/// The worker binary reports garbage input as an `Err` frame and exits
/// nonzero — a crashed aggregator cannot wedge a worker, and a corrupted
/// pipe cannot panic it.
#[test]
fn worker_binary_reports_garbage_and_exits_nonzero() {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let mut child = Command::new(WORKER_EXE)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(&[9, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 1, 2, 3, 4])
        .expect("write garbage");
    let output = child.wait_with_output().expect("worker exits");
    assert!(!output.status.success(), "worker accepted garbage");
    let mut reply = output.stdout.as_slice();
    match knw_cluster::read_frame(&mut reply) {
        Ok(Some(knw_cluster::Frame::Err(message))) => {
            assert!(!message.is_empty());
        }
        other => panic!("expected an Err frame, got {other:?}"),
    }
}

/// Hash-affine routing puts every occurrence of an item on the same worker
/// even across processes: the per-worker shards of a cluster run match a
/// `partition_by_item`-style pre-partition fed to local sketches.
#[test]
fn hash_affine_cluster_matches_the_local_partition() {
    let seed = 0u64; // seed 0 == knw_stream::partition_by_item
    let spec = SketchSpec::l0("knw-l0", 0.2, 1 << 12, 31);
    let stream = updates(12_000);
    let shards = 3usize;

    // Cluster run under hash-affine routing.
    let mut cluster = L0ClusterAggregator::spawn(
        &config(shards, RoutingPolicy::HashAffine { seed }, false),
        &spec,
    )
    .expect("spawn");
    cluster.ingest_batch(&stream);
    let merged = cluster.finish().expect("clean run");

    // Local reference: pre-partition by item, one sketch per part, merge.
    let parts = knw_stream::partition_updates_by_item(&stream, shards);
    let mut local = build_l0(&spec).expect("zoo name");
    for part in &parts {
        let mut shard = build_l0(&spec).expect("zoo name");
        shard.update_batch(part);
        // Merge through the same dyn contract the aggregator uses.
        <(u64, i64) as knw_cluster::ClusterUpdate>::merge(local.as_mut(), shard.as_ref())
            .expect("compatible shards");
    }
    assert_eq!(merged.estimate().to_bits(), local.estimate().to_bits());
}
