//! Spec-registry completeness: the wire format's name→type registry
//! (`knw_cluster::spec`) and the estimator zoos
//! (`knw_baselines::all_f0_estimators` / `all_l0_estimators`) must be the
//! *same* set — a sketch added to one but not the other would make cluster
//! runs and in-process runs silently disagree about what exists.  And a
//! name in neither must fail as a typed error naming the bad spec field.

use knw_baselines::{all_f0_estimators, all_l0_estimators};
use knw_cluster::{
    build_f0, build_l0, f0_estimator_names, f0_shard_from_bytes, l0_estimator_names,
    l0_shard_from_bytes, ClusterError, SketchSpec,
};
use std::collections::BTreeSet;

const EPS: f64 = 0.1;
const UNIVERSE: u64 = 1 << 16;
const SEED: u64 = 77;

/// The F0 registry and the F0 zoo expose exactly the same names — neither
/// can drift ahead of the other.
#[test]
fn f0_registry_matches_the_zoo_exactly() {
    let registry: BTreeSet<&str> = f0_estimator_names().iter().copied().collect();
    let zoo: BTreeSet<String> = all_f0_estimators(EPS, UNIVERSE, SEED)
        .iter()
        .map(|e| e.name().to_string())
        .collect();
    let zoo_refs: BTreeSet<&str> = zoo.iter().map(String::as_str).collect();
    assert_eq!(
        registry, zoo_refs,
        "the wire-format registry and all_f0_estimators drifted apart"
    );
}

/// The L0 registry and the L0 zoo expose exactly the same names.
#[test]
fn l0_registry_matches_the_zoo_exactly() {
    let registry: BTreeSet<&str> = l0_estimator_names().iter().copied().collect();
    let zoo: BTreeSet<String> = all_l0_estimators(EPS, UNIVERSE, SEED)
        .iter()
        .map(|e| e.name().to_string())
        .collect();
    let zoo_refs: BTreeSet<&str> = zoo.iter().map(String::as_str).collect();
    assert_eq!(
        registry, zoo_refs,
        "the wire-format registry and all_l0_estimators drifted apart"
    );
}

/// Every name either zoo produces resolves through `SketchSpec`: it
/// builds, reports the same name back, and its serialized shard bytes
/// deserialize through the registry — the full wire round trip, for the
/// whole zoo, in one place.
#[test]
fn every_zoo_name_resolves_and_round_trips_through_the_registry() {
    for estimator in all_f0_estimators(EPS, UNIVERSE, SEED) {
        let spec = SketchSpec::f0(estimator.name(), EPS, UNIVERSE, SEED);
        let mut built = build_f0(&spec)
            .unwrap_or_else(|e| panic!("zoo name {:?} failed to resolve: {e}", estimator.name()));
        assert_eq!(
            built.name(),
            estimator.name(),
            "registry renamed the sketch"
        );
        built.insert_batch(&[1, 2, 3, 5, 8, 13]);
        let decoded = f0_shard_from_bytes(&spec, &built.wire_bytes())
            .unwrap_or_else(|e| panic!("{:?} shard bytes rejected: {e}", estimator.name()));
        assert_eq!(decoded.estimate().to_bits(), built.estimate().to_bits());
    }
    for estimator in all_l0_estimators(EPS, UNIVERSE, SEED) {
        let spec = SketchSpec::l0(estimator.name(), EPS, UNIVERSE, SEED);
        let mut built = build_l0(&spec)
            .unwrap_or_else(|e| panic!("zoo name {:?} failed to resolve: {e}", estimator.name()));
        assert_eq!(
            built.name(),
            estimator.name(),
            "registry renamed the sketch"
        );
        built.update_batch(&[(1, 4), (2, -1), (1, -4), (9, 2)]);
        let decoded = l0_shard_from_bytes(&spec, &built.wire_bytes())
            .unwrap_or_else(|e| panic!("{:?} shard bytes rejected: {e}", estimator.name()));
        assert_eq!(decoded.estimate().to_bits(), built.estimate().to_bits());
    }
}

/// A name outside the zoo fails as the typed `UnknownEstimator`, and the
/// rendered error names both the offending value and the spec field it
/// arrived in (`estimator`) — the operator knows exactly what to fix.
#[test]
fn unknown_names_are_typed_errors_naming_the_spec_field() {
    for spec in [
        SketchSpec::f0("no-such-sketch", EPS, UNIVERSE, SEED),
        SketchSpec::l0("no-such-sketch", EPS, UNIVERSE, SEED),
    ] {
        let error = match spec.mode {
            knw_cluster::StreamMode::F0 => build_f0(&spec).map(|_| ()).unwrap_err(),
            knw_cluster::StreamMode::L0 => build_l0(&spec).map(|_| ()).unwrap_err(),
        };
        let ClusterError::UnknownEstimator { name } = &error else {
            panic!("expected UnknownEstimator, got {error:?}");
        };
        assert_eq!(name, "no-such-sketch");
        let message = error.to_string();
        assert!(
            message.contains("`estimator`"),
            "error must name the bad spec field: {message}"
        );
        assert!(
            message.contains("no-such-sketch"),
            "error must name the bad value: {message}"
        );
    }
}

/// The same completeness holds on the deserialization side: unknown names
/// are rejected (with the name in the message) before any bytes are
/// trusted.
#[test]
fn unknown_names_are_rejected_on_the_decode_side_too() {
    let f0 = SketchSpec::f0("no-such-sketch", EPS, UNIVERSE, SEED);
    let message = f0_shard_from_bytes(&f0, &[1, 2, 3])
        .map(|_| ())
        .unwrap_err();
    assert!(message.contains("no-such-sketch"), "{message}");
    let l0 = SketchSpec::l0("no-such-sketch", EPS, UNIVERSE, SEED);
    let message = l0_shard_from_bytes(&l0, &[1, 2, 3])
        .map(|_| ())
        .unwrap_err();
    assert!(message.contains("no-such-sketch"), "{message}");
}
