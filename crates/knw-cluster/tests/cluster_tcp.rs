//! The socket-transport acceptance tests: a 4-worker **TCP** run — real
//! `knw-worker --listen` processes serving the frame protocol on localhost
//! sockets — produces estimates bit-identical to the single-stream run for
//! every estimator in both the F0 and L0 zoos, under both routing
//! policies; and every socket failure mode (killed worker, refused
//! connection, stalled half-open peer) surfaces as a typed `ClusterError`
//! naming the failing worker, within a bounded timeout.
//!
//! Runs in CI (`cargo test -p knw-cluster --test cluster_tcp`); needs
//! nothing but process spawning and the loopback interface.

use knw_cluster::ListeningWorkerFleet;
use knw_cluster::{
    build_f0, build_l0, f0_estimator_names, l0_estimator_names, ClusterError, F0ClusterAggregator,
    L0ClusterAggregator, SketchSpec, TcpClusterConfig,
};
use knw_engine::{EngineConfig, RoutingPolicy};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const WORKER_EXE: &str = env!("CARGO_BIN_EXE_knw-worker");
const EPS: f64 = 0.1;
const UNIVERSE: u64 = 1 << 16;
const SEED: u64 = 2026;

/// Spawns `count` listening workers on free localhost ports (reaped on
/// drop by the shared fleet helper).
fn listen(count: usize) -> ListeningWorkerFleet {
    ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", count)
        .expect("spawn listening workers")
}

/// The test-sized TCP cluster configuration over a fleet's addresses.
fn config(
    fleet: &ListeningWorkerFleet,
    routing: RoutingPolicy,
    precoalesce: bool,
) -> TcpClusterConfig {
    TcpClusterConfig::new(fleet.addrs().iter().cloned()).with_engine(
        EngineConfig::new(fleet.addrs().len())
            .with_batch_size(1024)
            .with_routing(routing)
            .with_precoalesce(precoalesce),
    )
}

/// A skewed insert-only stream.
fn items(len: u64) -> Vec<u64> {
    (0..len)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % UNIVERSE)
        .collect()
}

/// A churn-heavy signed update stream (mixed signs, cancellations).
fn updates(len: u64) -> Vec<(u64, i64)> {
    (0..len)
        .map(|i| {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x % 4_096, (x % 9) as i64 - 4)
        })
        .collect()
}

/// Acceptance criterion, F0 half: for every estimator in the zoo, 4 TCP
/// workers + merge == one process, bit for bit, under both routing
/// policies.  All runs share one worker fleet, so this also proves the
/// serve loop survives many sequential sessions.
#[test]
fn four_worker_tcp_run_is_bit_identical_for_every_f0_estimator() {
    let fleet = listen(4);
    let stream = items(20_000);
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 3 },
    ] {
        for &name in f0_estimator_names() {
            let spec = SketchSpec::f0(name, EPS, UNIVERSE, SEED);
            let mut cluster = F0ClusterAggregator::connect(&config(&fleet, routing, false), &spec)
                .expect("connect 4 workers");
            for chunk in stream.chunks(3_331) {
                cluster.ingest_batch(chunk);
            }
            assert_eq!(cluster.items_ingested(), stream.len() as u64);
            let merged = cluster.finish().expect("clean 4-worker TCP run");

            let mut single = build_f0(&spec).expect("zoo name");
            single.insert_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates from the single-process run over TCP ({routing:?})"
            );
        }
    }
}

/// Acceptance criterion, L0 half: same property over signed turnstile
/// streams — including hash-affine (by-item) routing and aggregator-side
/// pre-coalescing, both of which must leave the estimate bit-identical.
#[test]
fn four_worker_tcp_run_is_bit_identical_for_every_l0_estimator() {
    let fleet = listen(4);
    let stream = updates(20_000);
    for (routing, precoalesce) in [
        (RoutingPolicy::RoundRobin, false),
        (RoutingPolicy::RoundRobin, true),
        (RoutingPolicy::HashAffine { seed: 9 }, false),
    ] {
        for &name in l0_estimator_names() {
            let spec = SketchSpec::l0(name, EPS, UNIVERSE, SEED);
            let mut cluster =
                L0ClusterAggregator::connect(&config(&fleet, routing, precoalesce), &spec)
                    .expect("connect 4 workers");
            for chunk in stream.chunks(2_777) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("clean 4-worker TCP run");

            let mut single = build_l0(&spec).expect("zoo name");
            single.update_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates from the single-process run over TCP \
                 ({routing:?}, precoalesce {precoalesce})"
            );
        }
    }
}

/// Midstream reporting over sockets: snapshots (serialized shards + locally
/// buffered updates) track the single-process prefix estimate exactly, and
/// the connections keep streaming afterwards.
#[test]
fn tcp_snapshots_track_the_stream_exactly() {
    let fleet = listen(3);
    let spec = SketchSpec::f0("knw-f0", 0.05, 1 << 20, 11);
    let stream = items(30_000);
    let mut cluster =
        F0ClusterAggregator::connect(&config(&fleet, RoutingPolicy::RoundRobin, false), &spec)
            .expect("connect");
    let mut single = build_f0(&spec).expect("zoo name");
    for (round, chunk) in stream.chunks(10_000).enumerate() {
        cluster.ingest_batch(chunk);
        single.insert_batch(chunk);
        assert_eq!(
            cluster.estimate().expect("snapshot").to_bits(),
            single.estimate().to_bits(),
            "snapshot diverged in round {round}"
        );
    }
    let merged = cluster.finish().expect("clean finish");
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// `connect_workers` (the `&[addr]` front with default knobs) works end to
/// end against a listening fleet.
#[test]
fn connect_workers_front_aggregates_cleanly() {
    let fleet = listen(2);
    let spec = SketchSpec::f0("hyperloglog", EPS, UNIVERSE, SEED);
    let stream = items(5_000);
    let mut cluster =
        F0ClusterAggregator::connect_workers(fleet.addrs(), &spec).expect("connect_workers");
    cluster.ingest_batch(&stream);
    let merged = cluster.finish().expect("clean run");
    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// Fault injection: killing a worker *process* mid-stream surfaces a typed
/// `WorkerDied` naming the worker — the socket mirror of the pipe
/// transport's broken-pipe detection — instead of a silent undercount or a
/// hang.
#[test]
fn killed_tcp_worker_surfaces_worker_died() {
    let mut fleet = listen(4);
    let spec = SketchSpec::l0("knw-l0", 0.2, 1 << 12, 5);
    let mut cluster =
        L0ClusterAggregator::connect(&config(&fleet, RoutingPolicy::RoundRobin, false), &spec)
            .expect("connect");
    cluster.ingest_batch(&updates(5_000));
    fleet.kill(2).expect("kill worker process");
    // Let the peer's FIN/RST reach our socket before streaming on.
    std::thread::sleep(Duration::from_millis(100));
    cluster.ingest_batch(&updates(5_000));
    match cluster.finish() {
        Err(ClusterError::WorkerDied { worker }) => assert_eq!(worker, 2),
        Err(other) => panic!("expected WorkerDied, got {other:?}"),
        Ok(_) => panic!("a run missing a shard must not report"),
    }
}

/// An empty address list is refused typed (`with_shards` clamps zero to
/// one shard, so without the guard this would panic indexing `addrs[0]`).
#[test]
fn empty_address_list_is_a_typed_error() {
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    match F0ClusterAggregator::connect_workers(&[] as &[&str], &spec) {
        Err(ClusterError::Io { worker: None, .. }) => {}
        Err(other) => panic!("expected a typed Io error, got {other:?}"),
        Ok(_) => panic!("an empty cluster must not spawn"),
    }
}

/// Fault injection: an address with nothing listening is a typed
/// `ConnectFailed` naming the worker index and address, raised before any
/// frame flows — and refused connections fail fast, not at some distant
/// timeout.
#[test]
fn connection_refused_is_typed_connect_failed() {
    // Bind-then-drop guarantees a port with no listener behind it.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let started = Instant::now();
    match F0ClusterAggregator::connect_workers(std::slice::from_ref(&dead_addr), &spec) {
        Err(ClusterError::ConnectFailed { worker, addr, .. }) => {
            assert_eq!(worker, 0);
            assert_eq!(addr, dead_addr);
        }
        Err(other) => panic!("expected ConnectFailed, got {other:?}"),
        Ok(_) => panic!("connecting to a dead port must fail"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "refused connection took {:?} to surface",
        started.elapsed()
    );
}

/// Fault injection: a half-open / stalled peer — accepts the connection,
/// never answers — trips the transport's read timeout as a typed
/// `Timeout` naming the worker, within a bounded interval.  No hangs.
#[test]
fn stalled_peer_times_out_with_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // The stalled "worker": accepts, holds the socket open, never replies.
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(30));
        drop(stream);
    });

    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let config = TcpClusterConfig::new([addr]).with_io_timeout(Some(Duration::from_millis(300)));
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect");
    cluster.ingest_batch(&items(1_000));
    let started = Instant::now();
    match cluster.finish() {
        Err(ClusterError::Timeout { worker }) => assert_eq!(worker, 0),
        Err(other) => panic!("expected Timeout, got {other:?}"),
        Ok(_) => panic!("a stalled worker must not produce a report"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "stalled peer took {:?} to surface",
        started.elapsed()
    );
}

/// A worker handed an address it can never bind exits before printing
/// its `listening on` banner.  The spawn helper must surface that as a
/// prompt typed error (with the child reaped and its exit status in the
/// message) — not block forever on the banner read.
#[test]
fn worker_that_exits_before_its_banner_is_a_typed_spawn_error() {
    use knw_cluster::spawn_listening_worker;
    // TEST-NET-3 (RFC 5737): never assigned to a local interface, so the
    // child's bind fails immediately and it exits without a banner.
    let started = Instant::now();
    let err = spawn_listening_worker(WORKER_EXE.as_ref(), "203.0.113.7:9", &[])
        .expect_err("an un-bindable address must fail the spawn");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    assert!(
        err.to_string()
            .contains("exited before printing its banner"),
        "{err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "banner failure took {:?} to surface",
        started.elapsed()
    );
}

/// The desync half of the timeout taxonomy: a peer that answers with
/// *half a frame* and then stalls leaves the link desynchronized — part
/// of the reply was already consumed when the read deadline fired, so
/// resuming reads in place would misparse leftover bytes as a fresh
/// length prefix.  That must surface as the typed `Desynced` (a link
/// fault recovery may re-dial and replay), never as the in-place
/// recoverable `Timeout` and never as a silent misparse.
#[test]
fn mid_frame_stall_is_a_typed_desync_not_a_timeout() {
    use knw_cluster::{read_frame, write_frame, Frame};
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // The desyncing "worker": protocol-fluent until the report, then
    // sends half a Shard reply and stalls inside the frame.
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = stream.try_clone().expect("clone");
        let mut writer = stream;
        while let Ok(Some(frame)) = read_frame(&mut reader) {
            if matches!(frame, Frame::Finish | Frame::Snapshot) {
                let mut reply = Vec::new();
                write_frame(&mut reply, &Frame::Shard(vec![0xAB; 512])).expect("encode");
                writer
                    .write_all(&reply[..reply.len() / 2])
                    .expect("send half the reply");
                writer.flush().expect("flush");
                std::thread::sleep(Duration::from_secs(30));
            }
        }
    });

    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let config = TcpClusterConfig::new([addr]).with_io_timeout(Some(Duration::from_millis(300)));
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect");
    cluster.ingest_batch(&items(1_000));
    let started = Instant::now();
    match cluster.finish() {
        Err(ClusterError::Desynced { worker }) => assert_eq!(worker, 0),
        Err(other) => panic!("expected Desynced, got {other:?}"),
        Ok(_) => panic!("a desynced link must not produce a report"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "mid-frame stall took {:?} to surface",
        started.elapsed()
    );
}

/// A failed snapshot poisons the aggregator: the conversation may have
/// reply frames still queued on some links, so a retried report must
/// refuse with a typed error instead of silently merging stale shards.
#[test]
fn failed_snapshot_poisons_later_reports() {
    use knw_cluster::{read_frame, write_frame, Frame};
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    // A protocol-fluent but faulty "worker": consumes frames normally,
    // answers every Snapshot with an Err frame.
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = stream.try_clone().expect("clone");
        let mut writer = stream;
        while let Ok(Some(frame)) = read_frame(&mut reader) {
            if matches!(frame, Frame::Snapshot) {
                write_frame(&mut writer, &Frame::Err("injected fault".into())).expect("reply");
            }
        }
    });

    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let mut cluster =
        F0ClusterAggregator::connect_workers(&[addr], &spec).expect("connect faulty worker");
    cluster.ingest_batch(&items(1_000));
    match cluster.snapshot().map(|_| "a shard") {
        Err(ClusterError::WorkerReported { worker: 0, message }) => {
            assert!(message.contains("injected"));
        }
        other => panic!("expected WorkerReported, got {other:?}"),
    }
    // The retry must refuse — the link is desynchronized, not recovered.
    match cluster.snapshot().map(|_| "a shard") {
        Err(ClusterError::Protocol { worker: 0, got, .. }) => {
            assert!(got.contains("desynchronized"), "{got}");
        }
        other => panic!("expected a sticky Protocol refusal, got {other:?}"),
    }
}

/// The serve loop is robust to misbehaving clients: a connection that
/// sends garbage (the worker reports an `Err` frame and logs the session)
/// must not take the worker down — the next, well-behaved aggregation
/// succeeds against the same worker.
#[test]
fn serve_loop_survives_a_garbage_client() {
    let fleet = listen(1);
    {
        let mut garbage = TcpStream::connect(&fleet.addrs()[0]).expect("connect raw");
        garbage
            .write_all(&[9, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 1, 2, 3, 4])
            .expect("write garbage");
        // The worker answers with an Err frame and closes the session.
        let reply = knw_cluster::read_frame(&mut garbage).expect("read reply");
        match reply {
            Some(knw_cluster::Frame::Err(message)) => assert!(!message.is_empty()),
            other => panic!("expected an Err frame, got {other:?}"),
        }
    }

    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let stream = items(5_000);
    let mut cluster =
        F0ClusterAggregator::connect_workers(fleet.addrs(), &spec).expect("connect after garbage");
    cluster.ingest_batch(&stream);
    let merged = cluster.finish().expect("clean run after a garbage client");
    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}
