//! The elastic-resharding acceptance tests: growing 2 → 4 and shrinking
//! 4 → 2 **mid-stream** — checkpoint + filtered journal replay onto the
//! split routing table on the way up, `merge_dyn` fold-back of retired
//! shards into their split parents on the way down — yields results
//! **bit-identical** to the single-process run for every estimator in
//! both the F0 and L0 zoos, under both routing policies, including when
//! a rescale races a worker fault; plus the placement half of the story:
//! [`from_pool`] starts a fleet with no static address list and refuses
//! typed when the pool cannot cover it, and retired workers return to
//! the pool for later grows to re-adopt.
//!
//! Runs in CI (`cargo test -p knw-cluster --test cluster_reshard`, plain
//! and `--features serde`); needs only process spawning and loopback.
//!
//! [`from_pool`]: F0ClusterAggregator::from_pool

use knw_cluster::{
    build_f0, build_l0, f0_estimator_names, l0_estimator_names, spawn_listening_worker,
    ClusterError, F0ClusterAggregator, L0ClusterAggregator, ListeningWorkerFleet, RecoveryPolicy,
    SketchSpec, TcpClusterConfig, WorkerRegistry,
};
use knw_engine::{EngineConfig, RoutingPolicy};
use knw_hash::rng::{epoch_shard_for_key, shard_for_key, split_parent};
use proptest::prelude::*;
use std::process::Child;
use std::sync::Arc;
use std::time::Duration;

const WORKER_EXE: &str = env!("CARGO_BIN_EXE_knw-worker");
const EPS: f64 = 0.1;
const UNIVERSE: u64 = 1 << 16;
const SEED: u64 = 4242;

/// A spare worker process, reaped on drop (test panics must not leak
/// forever-serving strays).
struct Spare(Child);

impl Drop for Spare {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a spare `--listen --register` worker and waits until its
/// announcement landed in the registry.
fn spawn_registered_spare(registry: &WorkerRegistry) -> Spare {
    let registry_addr = registry.local_addr().to_string();
    let before = registry.available();
    let (child, _) = spawn_listening_worker(
        WORKER_EXE.as_ref(),
        "127.0.0.1:0",
        &["--register", &registry_addr],
    )
    .expect("spawn spare worker");
    for _ in 0..400 {
        if registry.available() > before {
            return Spare(child);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("spare worker never registered");
}

/// A fast-failing recovery policy for tests: retries stay bounded in
/// wall-clock even when every attempt must time out.
fn test_policy() -> RecoveryPolicy {
    RecoveryPolicy::default()
        .with_max_retries(4)
        .with_backoff(Duration::from_millis(50))
}

fn tcp_config(
    addrs: &[String],
    routing: RoutingPolicy,
    registry: Option<Arc<WorkerRegistry>>,
) -> TcpClusterConfig {
    let mut config = TcpClusterConfig::new(addrs.iter().cloned())
        .with_engine(
            EngineConfig::new(addrs.len())
                .with_batch_size(512)
                .with_routing(routing),
        )
        .with_recovery(test_policy());
    if let Some(registry) = registry {
        config = config.with_registry(registry);
    }
    config
}

/// A skewed insert-only stream.
fn items(len: u64) -> Vec<u64> {
    (0..len)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % UNIVERSE)
        .collect()
}

/// A churn-heavy signed update stream (mixed signs, cancellations).
fn updates(len: u64) -> Vec<(u64, i64)> {
    (0..len)
        .map(|i| {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (x % 4_096, (x % 9) as i64 - 4)
        })
        .collect()
}

/// Lets a severed link's FIN/RST reach the aggregator's socket before the
/// stream continues, so the fault is observed deterministically.
fn let_fault_propagate() {
    std::thread::sleep(Duration::from_millis(100));
}

/// Tentpole acceptance criterion, F0 grow half: for every estimator in
/// the zoo and both routing policies, growing the fleet 2 → 4 mid-stream
/// — the two new shards placed from the registry pool, each split
/// parent's checkpoint + journal re-routed under the grown epoch table —
/// leaves the final merged estimate bit-identical to the single-process
/// run.
#[test]
fn grow_2_to_4_mid_stream_is_bit_identical_for_every_f0_estimator() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 5 },
    ] {
        for &name in f0_estimator_names() {
            let fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2)
                .expect("spawn fleet");
            let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
            let _spare_a = spawn_registered_spare(&registry);
            let _spare_b = spawn_registered_spare(&registry);

            let spec = SketchSpec::f0(name, EPS, UNIVERSE, SEED);
            let stream = items(12_000);
            let mut cluster = F0ClusterAggregator::connect(
                &tcp_config(fleet.addrs(), routing, Some(Arc::clone(&registry))),
                &spec,
            )
            .expect("connect 2 workers");
            let (first, rest) = stream.split_at(stream.len() / 2);
            for chunk in first.chunks(1_111) {
                cluster.ingest_batch(chunk);
            }
            cluster.scale_to(4).expect("grow 2 -> 4 mid-stream");
            for chunk in rest.chunks(1_111) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("grown run reports cleanly");

            let mut single = build_f0(&spec).expect("zoo name");
            single.insert_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates after a mid-stream grow ({routing:?})"
            );
        }
    }
}

/// Tentpole acceptance criterion, L0 grow half: same property over signed
/// turnstile streams for every estimator in the L0 zoo — the linearity of
/// L0 shard state is exactly what makes "parent restarts empty, the new
/// shard inherits checkpoint + moved updates" mass-preserving.
#[test]
fn grow_2_to_4_mid_stream_is_bit_identical_for_every_l0_estimator() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 11 },
    ] {
        for &name in l0_estimator_names() {
            let fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2)
                .expect("spawn fleet");
            let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
            let _spare_a = spawn_registered_spare(&registry);
            let _spare_b = spawn_registered_spare(&registry);

            let spec = SketchSpec::l0(name, EPS, UNIVERSE, SEED);
            let stream = updates(12_000);
            let mut cluster = L0ClusterAggregator::connect(
                &tcp_config(fleet.addrs(), routing, Some(Arc::clone(&registry))),
                &spec,
            )
            .expect("connect 2 workers");
            let (first, rest) = stream.split_at(stream.len() / 2);
            for chunk in first.chunks(999) {
                cluster.ingest_batch(chunk);
            }
            cluster.scale_to(4).expect("grow 2 -> 4 mid-stream");
            for chunk in rest.chunks(999) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("grown run reports cleanly");

            let mut single = build_l0(&spec).expect("zoo name");
            single.update_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates after a mid-stream grow ({routing:?})"
            );
        }
    }
}

/// Tentpole acceptance criterion, F0 shrink half: shrinking 4 → 2
/// mid-stream — each retiree's final shard folded into its split parent
/// via the exact merge, the survivor restarted on the merged checkpoint —
/// is bit-identical for the whole zoo under both routing policies.
#[test]
fn shrink_4_to_2_mid_stream_is_bit_identical_for_every_f0_estimator() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 5 },
    ] {
        for &name in f0_estimator_names() {
            let fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 4)
                .expect("spawn fleet");
            let spec = SketchSpec::f0(name, EPS, UNIVERSE, SEED);
            let stream = items(12_000);
            let mut cluster =
                F0ClusterAggregator::connect(&tcp_config(fleet.addrs(), routing, None), &spec)
                    .expect("connect 4 workers");
            let (first, rest) = stream.split_at(stream.len() / 2);
            for chunk in first.chunks(1_111) {
                cluster.ingest_batch(chunk);
            }
            cluster.scale_to(2).expect("shrink 4 -> 2 mid-stream");
            for chunk in rest.chunks(1_111) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("shrunk run reports cleanly");

            let mut single = build_f0(&spec).expect("zoo name");
            single.insert_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates after a mid-stream shrink ({routing:?})"
            );
        }
    }
}

/// Tentpole acceptance criterion, L0 shrink half: signed turnstile
/// streams shrink exactly too — cancellations already folded into a
/// retiree's shard survive the merge into its split parent.
#[test]
fn shrink_4_to_2_mid_stream_is_bit_identical_for_every_l0_estimator() {
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashAffine { seed: 11 },
    ] {
        for &name in l0_estimator_names() {
            let fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 4)
                .expect("spawn fleet");
            let spec = SketchSpec::l0(name, EPS, UNIVERSE, SEED);
            let stream = updates(12_000);
            let mut cluster =
                L0ClusterAggregator::connect(&tcp_config(fleet.addrs(), routing, None), &spec)
                    .expect("connect 4 workers");
            let (first, rest) = stream.split_at(stream.len() / 2);
            for chunk in first.chunks(999) {
                cluster.ingest_batch(chunk);
            }
            cluster.scale_to(2).expect("shrink 4 -> 2 mid-stream");
            for chunk in rest.chunks(999) {
                cluster.ingest_batch(chunk);
            }
            let merged = cluster.finish().expect("shrunk run reports cleanly");

            let mut single = build_l0(&spec).expect("zoo name");
            single.update_batch(&stream);
            assert_eq!(
                merged.estimate().to_bits(),
                single.estimate().to_bits(),
                "{name} deviates after a mid-stream shrink ({routing:?})"
            );
        }
    }
}

/// Placement acceptance criterion: [`F0ClusterAggregator::from_pool`]
/// starts a fleet with **no static address list** — and when the pool
/// cannot cover the asked-for worker count it refuses with the typed
/// [`ClusterError::PoolExhausted`] naming the shortfall, never silently
/// starting a smaller fleet.  Once enough spares register, the same call
/// succeeds and the pooled run is bit-identical to single-process.
#[test]
fn from_pool_refuses_typed_until_the_pool_covers_the_fleet() {
    let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
    let _spare_a = spawn_registered_spare(&registry);

    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    // One live spare cannot cover three workers: typed refusal, with the
    // shortfall spelled out.
    match F0ClusterAggregator::from_pool(&registry, 3, &spec).map(|_| "a fleet") {
        Err(ClusterError::PoolExhausted { needed: 3, live: 1 }) => {}
        other => panic!("expected PoolExhausted {{needed: 3, live: 1}}, got {other:?}"),
    }
    // The refused draw must not have consumed the spare.
    assert_eq!(registry.available(), 1, "refusal leaves the pool intact");

    let _spare_b = spawn_registered_spare(&registry);
    let _spare_c = spawn_registered_spare(&registry);
    let stream = items(9_000);
    let mut cluster =
        F0ClusterAggregator::from_pool(&registry, 3, &spec).expect("pool covers 3 workers");
    for chunk in stream.chunks(1_111) {
        cluster.ingest_batch(chunk);
    }
    let merged = cluster.finish().expect("pooled run reports cleanly");

    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// Placement round-trip: a scale-down returns the retirees' addresses to
/// the pool, and a later grow re-adopts those still-serving workers —
/// no fresh spares required — with the estimate staying exact across the
/// whole shrink-then-regrow cycle.
#[test]
fn retired_workers_return_to_the_pool_and_regrow_readopts_them() {
    let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
    let _spare_a = spawn_registered_spare(&registry);
    let _spare_b = spawn_registered_spare(&registry);

    let spec = SketchSpec::l0("knw-l0", EPS, 1 << 12, 17);
    let stream = updates(9_000);
    let mut cluster = L0ClusterAggregator::from_pool_with(
        &registry,
        EngineConfig::new(2)
            .with_batch_size(512)
            .with_routing(RoutingPolicy::HashAffine { seed: 7 }),
        Some(test_policy()),
        &spec,
    )
    .expect("place 2 workers from the pool");
    assert_eq!(registry.available(), 0, "both spares placed");

    let (first, rest) = stream.split_at(3_000);
    cluster.ingest_batch(first);
    cluster.scale_to(1).expect("shrink 2 -> 1");
    assert_eq!(
        registry.available(),
        1,
        "the retired worker's address returned to the pool"
    );
    cluster.ingest_batch(&rest[..3_000]);
    // The regrow draws the returned address — no new spare was spawned.
    cluster
        .scale_to(2)
        .expect("regrow 1 -> 2 re-adopts the retiree");
    assert_eq!(
        registry.available(),
        0,
        "the returned address was re-adopted"
    );
    cluster.ingest_batch(&rest[3_000..]);
    let merged = cluster.finish().expect("round-tripped run reports cleanly");

    let mut single = build_l0(&spec).expect("zoo name");
    single.update_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

/// Without a recovery policy there are no journals to split, so a rescale
/// refuses with the typed [`ClusterError::RescaleUnsupported`] — and the
/// refusal leaves the fleet fully usable: the stream continues and the
/// final report stays bit-identical.
#[test]
fn rescale_without_journaling_is_a_typed_refusal_that_leaves_the_fleet_usable() {
    let fleet =
        ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2).expect("spawn fleet");
    let spec = SketchSpec::f0("knw-f0", EPS, UNIVERSE, SEED);
    let stream = items(6_000);
    let config = TcpClusterConfig::new(fleet.addrs().iter().cloned())
        .with_engine(EngineConfig::new(2).with_batch_size(512));
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect");
    let (first, rest) = stream.split_at(3_000);
    cluster.ingest_batch(first);
    match cluster.scale_to(4) {
        Err(ClusterError::RescaleUnsupported { .. }) => {}
        other => panic!("expected RescaleUnsupported, got {other:?}"),
    }
    cluster.ingest_batch(rest);
    let merged = cluster
        .finish()
        .expect("refused rescale leaves the fleet usable");

    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&stream);
    assert_eq!(merged.estimate().to_bits(), single.estimate().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole acceptance criterion, fault-schedule sweep: a random
    /// interleaving of a rescale (to any target 1..=4) and a severed
    /// worker link — possibly in the same tick, possibly fault-first so
    /// the rescale's flush races the recovery replay — must still report
    /// bit-identically to the single-process prefix fold.
    #[test]
    fn rescales_racing_worker_faults_stay_exact(
        rescale_chunk in 0usize..8,
        target in 1usize..=4,
        kill_chunk in 0usize..8,
        worker_pick in 0usize..4,
        routing_seed in 0u64..4,
    ) {
        let routing = if routing_seed.is_multiple_of(2) {
            RoutingPolicy::RoundRobin
        } else {
            RoutingPolicy::HashAffine { seed: routing_seed }
        };
        let fleet = ListeningWorkerFleet::spawn(WORKER_EXE.as_ref(), "127.0.0.1:0", 2)
            .expect("spawn fleet");
        let registry = Arc::new(WorkerRegistry::bind("127.0.0.1:0").expect("bind registry"));
        let _spare_a = spawn_registered_spare(&registry);
        let _spare_b = spawn_registered_spare(&registry);

        let spec = SketchSpec::l0("knw-l0", EPS, 1 << 12, 13);
        let stream = updates(4_000);
        let mut cluster = L0ClusterAggregator::connect(
            &tcp_config(fleet.addrs(), routing, Some(Arc::clone(&registry))),
            &spec,
        )
        .expect("connect 2 workers");
        let mut single = build_l0(&spec).expect("zoo name");
        let mut fleet_size = 2usize;

        for (chunk_index, chunk) in stream.chunks(500).enumerate() {
            cluster.ingest_batch(chunk);
            single.update_batch(chunk);
            if chunk_index == kill_chunk {
                cluster.kill_worker(worker_pick % fleet_size).expect("sever link");
                let_fault_propagate();
            }
            if chunk_index == rescale_chunk {
                cluster.scale_to(target).expect("rescale during fault schedule");
                fleet_size = target;
            }
        }
        let merged = cluster.finish().expect("clean resharded finish");
        prop_assert_eq!(
            merged.estimate().to_bits(),
            single.estimate().to_bits(),
            "diverged (rescale to {} at {}, kill worker {} at {}, {:?})",
            target,
            rescale_chunk,
            worker_pick % fleet_size.max(1),
            kill_chunk,
            routing
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The epoched routing function itself, property-based: deterministic
    /// in `(seed, key, shards)`, in-range, identical to the flat
    /// [`shard_for_key`] at power-of-two counts, and — the invariant the
    /// whole grow path leans on — **refining by single splits**: adding
    /// one shard either leaves a key where it was, or moves it from
    /// exactly [`split_parent`] onto the one new shard.  No third option,
    /// so a grow only ever replays one parent's journal.
    #[test]
    fn epoch_routing_is_deterministic_and_refines_by_single_splits(
        seed in any::<u64>(),
        key in any::<u64>(),
        shards in 1usize..64,
    ) {
        let assigned = epoch_shard_for_key(seed, key, shards);
        prop_assert!(assigned < shards);
        prop_assert_eq!(assigned, epoch_shard_for_key(seed, key, shards));
        if shards.is_power_of_two() {
            prop_assert_eq!(assigned, shard_for_key(seed, key, shards));
        }
        let grown = epoch_shard_for_key(seed, key, shards + 1);
        if grown != assigned {
            prop_assert_eq!(grown, shards, "a moved key lands on the new shard");
            prop_assert_eq!(
                assigned,
                split_parent(shards),
                "a moved key came from the split parent"
            );
        }
    }
}
