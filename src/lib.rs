//! Facade crate re-exporting the KNW distinct-elements workspace public API.

pub use knw_baselines as baselines;
/// Distributed aggregation: frame protocol, spec registry, and the
/// pipe/TCP transports (`cluster::transport`) behind
/// `ClusterAggregator::{spawn, connect_workers}`.
pub use knw_cluster as cluster;
pub use knw_core as core;
pub use knw_engine as engine;
pub use knw_hash as hash;
/// Observability: the process-wide metrics registry, Prometheus-text
/// exposition, and the `knw_log!` structured logger.
pub use knw_metrics as metrics;
pub use knw_stream as stream;
pub use knw_vla as vla;
