//! Facade crate re-exporting the KNW distinct-elements workspace public API.
//!
//! # Keyed stores
//!
//! [`store::SketchStore`] tracks **millions of per-key sketches under one
//! memory budget** — per-user, per-source-IP, per-page cardinalities rather
//! than one global estimate. Its contract, in brief:
//!
//! * **Promotion.** Every key starts sparse/exact and lazily promotes to a
//!   full KNW sketch once its item set exceeds the configured threshold.
//!   Promotion is a deterministic function of the key's update multiset
//!   (F0: the distinct-item set; L0: the touched-item set, zero nets
//!   included), and per-key sketch seeds derive purely from
//!   `(store seed, route key)` — so any shard partition of a keyed stream
//!   merges back **bit-identical in every per-key estimate** to
//!   single-stream ingestion, including keys that promote at a merge or
//!   post-reload boundary.
//! * **Budget & eviction.** Resident entries are accounted against
//!   `budget_bytes`; over budget, clock second-chance eviction spills cold
//!   keys to a serialized cold tier. Eviction is exact — reload restores
//!   the entry bit-for-bit — and reads decode cold entries transiently.
//! * **Exactness.** Below the promotion threshold per-key estimates are
//!   exact; only genuinely large keys pay sketch error. The identity
//!   guarantee is on estimates (`f64` equality), not serialized bytes (the
//!   sketches carry trajectory-dependent diagnostics counters).
//!
//! Keyed updates route across [`engine::ShardedEngine`] and the cluster via
//! the same `shard_for_key`; store snapshots merge via
//! `to_wire_bytes`/`merge_wire_bytes` or `MergeableEstimator::merge_from`.

pub use knw_baselines as baselines;
/// Distributed aggregation: frame protocol, spec registry, and the
/// pipe/TCP transports (`cluster::transport`) behind
/// `ClusterAggregator::{spawn, connect_workers}`.
pub use knw_cluster as cluster;
pub use knw_core as core;
pub use knw_engine as engine;
pub use knw_hash as hash;
/// Observability: the process-wide metrics registry, Prometheus-text
/// exposition, and the `knw_log!` structured logger.
pub use knw_metrics as metrics;
/// Keyed sketch stores: millions of budgeted per-key F0/L0 estimators with
/// lazy promotion, clock eviction to a serialized cold tier, and exact
/// shard-merge (see the crate-level "Keyed stores" section).
pub use knw_store as store;
pub use knw_stream as stream;
pub use knw_vla as vla;
