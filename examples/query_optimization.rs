//! Query optimization: per-column distinct-value estimation feeding a join
//! selectivity model — the database motivation of the paper's introduction
//! (Selinger-style access-path selection needs NDV statistics).
//!
//! The example scans a synthetic fact table once, maintains one KNW sketch per
//! column, estimates each column's number of distinct values (NDV), and uses
//! the classic `|R ⋈ S| ≈ |R|·|S| / max(ndv(R.a), ndv(S.a))` formula to rank
//! join orders.  Sketches for different partitions of the same column are also
//! merged, demonstrating union composability (Section 1 of the paper).
//!
//! Run with:
//! ```text
//! cargo run --release --example query_optimization
//! ```

use knw::core::{F0Config, KnwF0Sketch, MergeableEstimator};
use knw::stream::{StreamGenerator, UniformGenerator, ZipfGenerator};

struct ColumnStats {
    name: &'static str,
    rows: u64,
    sketch: KnwF0Sketch,
    exact: std::collections::HashSet<u64>,
}

impl ColumnStats {
    fn new(name: &'static str, universe: u64) -> Self {
        Self {
            name,
            rows: 0,
            sketch: KnwF0Sketch::new(F0Config::new(0.05, universe).with_seed(0xDB)),
            exact: std::collections::HashSet::new(),
        }
    }

    fn observe(&mut self, value: u64) {
        self.rows += 1;
        self.sketch.insert(value);
        self.exact.insert(value);
    }

    fn ndv(&self) -> f64 {
        self.sketch.estimate_f0()
    }
}

fn main() {
    let universe = 1u64 << 26;
    let rows = 800_000usize;

    // Three columns with very different value distributions.
    let mut customer_id = ColumnStats::new("orders.customer_id (uniform, high NDV)", universe);
    let mut product_id = ColumnStats::new("orders.product_id  (zipfian, medium NDV)", universe);
    let mut status = ColumnStats::new("orders.status      (categorical, tiny NDV)", universe);

    let mut customers = UniformGenerator::new(200_000, 1);
    let mut products = ZipfGenerator::new(50_000, 1.1, 2);
    let mut status_gen = UniformGenerator::new(7, 3);
    for _ in 0..rows {
        customer_id.observe(customers.next_item());
        product_id.observe(products.next_item());
        status.observe(status_gen.next_item());
    }

    println!(
        "{:<45} {:>10} {:>12} {:>12} {:>8}",
        "column", "rows", "true NDV", "est. NDV", "error"
    );
    for col in [&customer_id, &product_id, &status] {
        let truth = col.exact.len() as f64;
        let est = col.ndv();
        println!(
            "{:<45} {:>10} {:>12} {:>12.0} {:>7.1}%",
            col.name,
            col.rows,
            truth,
            est,
            100.0 * (est - truth).abs() / truth
        );
    }

    // Join selectivity: orders ⋈ customers on customer_id vs orders ⋈ products.
    let orders_rows = rows as f64;
    let customers_rows = 200_000.0;
    let products_rows = 50_000.0;
    let join_customers = orders_rows * customers_rows / customer_id.ndv().max(1.0);
    let join_products = orders_rows * products_rows / product_id.ndv().max(1.0);
    println!("\nestimated join cardinalities (|R||S|/max-NDV):");
    println!("  orders ⋈ customers : {join_customers:.0}");
    println!("  orders ⋈ products  : {join_products:.0}");
    println!(
        "  → the optimizer would join {} first",
        if join_customers < join_products {
            "customers"
        } else {
            "products"
        }
    );

    // Partitioned scan: two shards of the same column, sketched independently
    // and merged — the estimate matches a single-pass sketch.
    let cfg = F0Config::new(0.05, universe).with_seed(77);
    let mut shard_a = KnwF0Sketch::new(cfg);
    let mut shard_b = KnwF0Sketch::new(cfg);
    let mut gen_a = UniformGenerator::new(300_000, 11);
    let mut gen_b = UniformGenerator::new(300_000, 12);
    for _ in 0..200_000 {
        shard_a.insert(gen_a.next_item());
        shard_b.insert(gen_b.next_item());
    }
    let union_truth = {
        let mut all = std::collections::HashSet::new();
        let mut ga = UniformGenerator::new(300_000, 11);
        let mut gb = UniformGenerator::new(300_000, 12);
        for _ in 0..200_000 {
            all.insert(ga.next_item());
            all.insert(gb.next_item());
        }
        all.len() as f64
    };
    shard_a.merge_from(&shard_b).expect("same configuration");
    println!(
        "\npartitioned NDV: merged-sketch estimate {:.0}, true union NDV {union_truth:.0}",
        shard_a.estimate_f0()
    );
}
