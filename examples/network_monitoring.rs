//! Network monitoring: tracking distinct source addresses on a link and
//! flagging anomalies (worm spread / DDoS), the Section 1 motivating
//! application of the paper (Estan et al.'s Code Red measurement).
//!
//! A router cannot afford a hash table of every source IP it has seen; the
//! KNW sketch tracks the distinct-source count in a few kilobits and can be
//! read at every packet.  This example runs the production-shaped pipeline:
//! packets are batched and sharded across worker threads by the
//! [`knw::engine::ShardedF0Engine`], and each phase boundary reads a merged
//! snapshot — which, because KNW merges are exact, is the *same* estimate a
//! single sequential sketch would have produced.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use knw::core::{F0Config, KnwF0Sketch, SpaceUsage};
use knw::engine::{EngineConfig, ShardedF0Engine};
use knw::stream::{NetworkTraceGenerator, TrafficProfile};

fn main() {
    let universe = 1u64 << 32; // IPv4 source space
    let config = F0Config::new(0.05, universe).with_seed(2024);
    let shards = 4;
    let mut engine = ShardedF0Engine::new(
        EngineConfig::new(shards).with_batch_size(4096),
        move |_shard| KnwF0Sketch::new(config),
    );
    let mut trace = NetworkTraceGenerator::new(TrafficProfile::Background, 4_000, 7);

    let phases = [
        (TrafficProfile::Background, 150_000usize, "benign traffic"),
        (
            TrafficProfile::WormSpread,
            120_000,
            "worm outbreak (Code-Red-style source spread)",
        ),
        (TrafficProfile::Background, 80_000, "back to benign"),
        (
            TrafficProfile::DdosFlood,
            100_000,
            "DDoS flood with spoofed sources",
        ),
    ];

    println!(
        "{:<50} {:>14} {:>14} {:>9}",
        "phase", "true sources", "estimate", "error"
    );
    let mut previous_estimate = 0.0f64;
    let mut batch = Vec::with_capacity(4096);
    for (profile, packets, label) in phases {
        trace.set_profile(profile);
        for _ in 0..packets {
            batch.push(trace.next_packet().source_key());
            if batch.len() == batch.capacity() {
                engine.insert_batch(&batch);
                batch.clear();
            }
        }
        engine.insert_batch(&batch);
        batch.clear();

        let truth = trace.distinct_sources();
        let estimate = engine.estimate();
        let err = (estimate - truth as f64).abs() / truth as f64;
        let growth = if previous_estimate > 0.0 {
            estimate / previous_estimate
        } else {
            1.0
        };
        println!(
            "{label:<50} {truth:>14} {estimate:>14.0} {:>8.1}%",
            err * 100.0
        );
        if growth > 3.0 {
            println!("  ^ ALARM: distinct-source count grew {growth:.1}x during this phase");
        }
        previous_estimate = estimate;
    }

    let merged = engine.finish().expect("uniformly seeded shards");
    println!(
        "\nper-shard sketch footprint: {} bits ({:.1} KiB) for a 2^32 address space, {shards} shards",
        merged.space_bits(),
        merged.space_bits() as f64 / 8192.0
    );
}
