//! Network monitoring: the Section 1 motivating application of the paper
//! (Estan et al.'s Code Red measurement), upgraded from one global counter
//! to a *keyed* monitor.
//!
//! The original version of this example funneled every packet into a single
//! global distinct-source sketch. That catches a worm outbreak or a DDoS
//! flood (the global source count explodes), but it is structurally blind
//! to a **port scan**: one host probing tens of thousands of ports adds
//! exactly one distinct source, so the global estimate never moves.
//!
//! The fix is per-key fan-out tracking: a [`knw::store::SketchStore`] keyed
//! by source address, counting *distinct destination endpoints per source*.
//! Sparse sources (virtually all of them) are tracked exactly in a few
//! bytes; only genuinely chatty sources promote to full KNW sketches, and a
//! small memory budget evicts cold sources to a serialized tier without
//! losing a single count. A scanner then sticks out as one key whose
//! fan-out estimate is orders of magnitude above the rest — while a
//! spoofed-source flood, which the *global* monitor flags, shows per-source
//! fan-out of exactly 1.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use std::collections::{HashMap, HashSet};

use knw::core::{F0Config, KnwF0Sketch, SpaceUsage};
use knw::engine::{EngineConfig, ShardedF0Engine};
use knw::store::{F0SketchStore, StoreConfig};
use knw::stream::{NetworkTraceGenerator, TrafficProfile};

/// A source whose distinct-endpoint fan-out exceeds this is flagged.
const FANOUT_ALARM: f64 = 1_000.0;

fn main() {
    // Global monitor: distinct sources on the link (the paper's original
    // application), sharded across worker threads.
    let universe = 1u64 << 32; // IPv4 source space
    let global_config = F0Config::new(0.05, universe).with_seed(2024);
    let mut global =
        ShardedF0Engine::new(EngineConfig::new(4).with_batch_size(4096), move |_shard| {
            KnwF0Sketch::new(global_config)
        });

    // Keyed monitor: distinct destination endpoints *per source*. Endpoint
    // keys are destination<<16|port, so the item universe is 2^48. The
    // budget is deliberately tiny relative to the source population: cold
    // sources spill to the serialized tier and reload exactly.
    // Benign sources fan out to at most a few hundred endpoints, so with a
    // threshold of 512 they all stay in the exact sparse tier; only the
    // scanner promotes to a real sketch.
    let store_config = StoreConfig::new(F0Config::new(0.1, 1u64 << 48))
        .with_promote_threshold(512)
        .with_budget_bytes(256 << 10)
        .with_seed(2024);
    let mut per_source = F0SketchStore::<u64>::new(store_config);

    // Ground truth for the exactness claims below.
    let mut baseline: HashMap<u64, HashSet<u64>> = HashMap::new();

    let mut trace = NetworkTraceGenerator::new(TrafficProfile::Background, 4_000, 7);
    let phases = [
        (TrafficProfile::Background, 120_000usize, "benign traffic"),
        (
            TrafficProfile::PortScan,
            60_000,
            "port scan (one source, many ports)",
        ),
        (TrafficProfile::Background, 60_000, "back to benign"),
        (
            TrafficProfile::DdosFlood,
            100_000,
            "DDoS flood with spoofed sources",
        ),
    ];

    println!(
        "{:<40} {:>13} {:>13} {:>13}",
        "phase", "true sources", "global est", "max fan-out"
    );
    let mut batch = Vec::with_capacity(4096);
    let mut keyed_batch = Vec::with_capacity(4096);
    for (profile, packets, label) in phases {
        trace.set_profile(profile);
        let mut remaining = packets;
        while remaining > 0 {
            batch.clear();
            keyed_batch.clear();
            for _ in 0..remaining.min(4096) {
                let pkt = trace.next_packet();
                batch.push(pkt.source_key());
                keyed_batch.push((pkt.source_key(), pkt.destination_port_key()));
                baseline
                    .entry(pkt.source_key())
                    .or_default()
                    .insert(pkt.destination_port_key());
            }
            remaining -= batch.len();
            global.insert_batch(&batch);
            // Batch ingest groups by source before touching any entry.
            per_source.ingest_batch(&keyed_batch);
        }

        let (top_source, top_fanout) = hottest_source(&per_source);
        println!(
            "{label:<40} {:>13} {:>13.0} {top_fanout:>13.0}",
            trace.distinct_sources(),
            global.estimate(),
        );
        if top_fanout > FANOUT_ALARM {
            println!(
                "  ^ ALARM: source {top_source:#010x} touched ~{top_fanout:.0} distinct \
                 endpoints (scan-like fan-out)"
            );
        }
    }

    let stats = per_source.stats();
    println!(
        "\nkeyed store: {} sources tracked ({} resident, {} cold) under a {} KiB budget",
        per_source.len(),
        per_source.resident_len(),
        per_source.cold_len(),
        per_source.config().budget_bytes >> 10,
    );
    println!(
        "  promotions {} · evictions {} · reloads {} · high water {} KiB · cold tier {} KiB",
        stats.promotions,
        stats.evictions,
        stats.reloads,
        stats.budget_high_water >> 10,
        per_source.cold_bytes() >> 10,
    );

    // Exactness: sparse sources (below the promotion threshold) are tracked
    // *exactly*, eviction round-trips included; the scanner pays only the
    // configured sketch error.
    let threshold = per_source.config().promote_threshold as f64;
    let mut checked = 0u64;
    for (source, endpoints) in &baseline {
        let truth = endpoints.len() as f64;
        let estimate = per_source.estimate(source).expect("tracked source");
        if truth <= threshold {
            assert_eq!(estimate, truth, "sparse source {source:#x} must be exact");
            checked += 1;
        } else {
            let rel = (estimate - truth).abs() / truth;
            assert!(
                rel < 0.5,
                "promoted source {source:#x}: estimate {estimate:.0} vs truth {truth}"
            );
        }
    }
    let (top_source, _) = hottest_source(&per_source);
    let true_scanner = baseline
        .iter()
        .max_by_key(|(_, endpoints)| endpoints.len())
        .map(|(source, _)| *source)
        .expect("non-empty trace");
    assert_eq!(
        top_source, true_scanner,
        "the fan-out ranking must single out the scanner"
    );
    println!(
        "  exactness: {checked} sparse sources match the brute-force baseline bit-for-bit; \
         scanner {top_source:#010x} correctly ranked #1"
    );

    let merged = global.finish().expect("uniformly seeded shards");
    println!(
        "global sketch footprint: {} bits ({:.1} KiB) for a 2^32 address space",
        merged.space_bits(),
        merged.space_bits() as f64 / 8192.0
    );
}

/// The source with the largest estimated endpoint fan-out.
fn hottest_source(store: &F0SketchStore<u64>) -> (u64, f64) {
    let mut top = (0u64, 0.0f64);
    store.for_each_estimate(|source, estimate| {
        if estimate > top.1 {
            top = (*source, estimate);
        }
    });
    top
}
