//! Data cleaning with the Hamming norm (L0): finding database columns that are
//! "mostly similar" even when their rows arrive in different orders — the
//! Section 1 / Cormode-Datar-Indyk-Muthukrishnan application the paper's L0
//! algorithm targets, plus a packet-tracing style audit with deletions.
//!
//! The trick: stream column A as `+1` updates and column B as `−1` updates
//! into one L0 sketch.  Coordinates where the two columns agree cancel to
//! zero; the surviving Hamming norm counts the positions where they differ.
//!
//! Run with:
//! ```text
//! cargo run --release --example data_cleaning_l0
//! ```

use knw::core::{KnwL0Sketch, L0Config, MergeableEstimator, SpaceUsage};
use knw::engine::{EngineConfig, ShardedL0Engine};
use knw::hash::rng::{Rng64, SplitMix64};

fn main() {
    let universe = 1u64 << 22; // row-identifier space
    let rows = 60_000u64;

    // Column A: values keyed by row id.  Column B: a copy of A with a small
    // fraction of rows edited and a block of rows missing.
    let mut rng = SplitMix64::new(99);
    let column_a: Vec<(u64, i64)> = (0..rows)
        .map(|row| (row, 1 + (rng.next_below(1_000)) as i64))
        .collect();
    let mut column_b = column_a.clone();
    let mut true_differences = 0u64;
    for (row, value) in column_b.iter_mut() {
        if *row % 97 == 0 {
            *value += 7; // edited cell
            true_differences += 1;
        }
        if *row >= rows - 2_000 {
            *value = 0; // missing row (treated as value 0)
            true_differences += 1;
        }
    }

    // Sketch the difference vector: +value for A, −value for B, keyed by row.
    // Equal cells cancel exactly; differing cells keep a nonzero frequency.
    let config = L0Config::new(0.05, universe)
        .with_seed(4_242)
        .with_stream_length_bound(4 * rows)
        .with_update_magnitude_bound(2_048);
    let mut diff_sketch = KnwL0Sketch::new(config);
    // The two columns are scanned in unrelated orders — L0 does not care.
    for &(row, value) in column_a.iter() {
        diff_sketch.update(row, value);
    }
    for &(row, value) in column_b.iter().rev() {
        if value != 0 {
            diff_sketch.update(row, -value);
        }
    }

    let estimate = diff_sketch.estimate_l0();
    let similarity = 100.0 * (1.0 - estimate / rows as f64);
    println!("rows per column          : {rows}");
    println!("true differing positions : {true_differences}");
    println!("estimated differing rows : {estimate:.0}");
    println!("estimated similarity     : {similarity:.1}% of rows identical");
    println!(
        "sketch space             : {} bits ({:.1} KiB), columns never materialized together",
        diff_sketch.space_bits(),
        diff_sketch.space_bits() as f64 / 8192.0
    );

    // Packet-trace audit: ingress minus egress should be ~empty; dropped
    // packets show up as surviving coordinates.
    let mut audit = KnwL0Sketch::new(
        L0Config::new(0.1, universe)
            .with_seed(5_151)
            .with_stream_length_bound(1 << 22)
            .with_update_magnitude_bound(4),
    );
    let packets = 50_000u64;
    let dropped_every = 500u64;
    let mut dropped = 0u64;
    for packet_id in 0..packets {
        audit.update(packet_id, 1); // seen at ingress
        if packet_id % dropped_every == 17 {
            dropped += 1; // never seen at egress
        } else {
            audit.update(packet_id, -1); // seen at egress
        }
    }
    println!("\npacket audit: {dropped} packets were dropped; L0 estimate of the ingress−egress difference = {:.0}", audit.estimate_l0());

    // Distributed variant: the two column scans run on different machines.
    // Because the L0 counters are linear, each site sketches its own scan
    // (A as +value, B as −value) and the shard sketches merge by field
    // addition into exactly the sketch the sequential scan produced — the
    // same property the ShardedL0Engine uses to parallelize one site's scan.
    let mut site_a = KnwL0Sketch::new(config);
    let mut site_b = KnwL0Sketch::new(config);
    site_a.update_batch(&column_a);
    let negated_b: Vec<(u64, i64)> = column_b
        .iter()
        .filter(|&&(_, value)| value != 0)
        .map(|&(row, value)| (row, -value))
        .collect();
    site_b.update_batch(&negated_b);
    site_a.merge_from(&site_b).expect("same config and seed");
    println!(
        "\ndistributed diff: site-merged estimate = {:.0} (bit-identical to the sequential scan: {})",
        site_a.estimate_l0(),
        site_a.estimate_l0() == estimate
    );

    // And one site's scan, parallelized across a 4-shard turnstile engine:
    // any round-robin split of the updates merges back to the same sketch.
    let mut engine = ShardedL0Engine::new(EngineConfig::new(4), move |_| KnwL0Sketch::new(config));
    engine.update_batch(&column_a);
    engine.update_batch(&negated_b);
    let merged = engine.finish().expect("uniformly seeded shards");
    println!(
        "4-shard engine estimate = {:.0} (bit-identical: {})",
        merged.estimate_l0(),
        merged.estimate_l0() == estimate
    );
}
