//! Estimation-as-a-service: one nonblocking serve loop multiplexing many
//! concurrent client sessions over a shared worker fleet — no thread per
//! session — with the merged estimate **bit-identical** to a single
//! sketch over the union of every client's stream.
//!
//! The topology has three tiers, all on localhost threads here so the
//! example is self-contained under `cargo run --example`:
//!
//! ```text
//! 64 clients ──TCP──▶ knw-aggregate --serve (epoll loop) ──TCP──▶ 2 workers
//!   (drive_sessions)    (serve_sessions: one thread,        (knw-worker
//!                        per-session state machines)         serve loops)
//! ```
//!
//! Each client speaks the ordinary frame protocol (`Hello`, `Batch`…,
//! `Snapshot`/`Finish`) and gets its own `Shard` replies; the serve loop
//! interleaves them all into the shared [`ShardBatcher`] fleet.  Because
//! the sketches are exactly mergeable, the interleaving order doesn't
//! matter: the final merged estimate equals the single-process one bit
//! for bit.  On real machines, tier one is `knw-aggregate --serve ADDR`
//! and tier three is `knw-worker --listen ADDR`.
//!
//! Run this example with:
//! ```text
//! cargo run --release --example cluster_serve
//! ```

#[cfg(target_os = "linux")]
fn main() {
    use knw::cluster::{
        build_f0, drive_sessions, serve, serve_sessions, F0ClusterAggregator, ServeOptions,
        SessionServeOptions, SketchSpec, TcpClusterConfig,
    };
    use knw::engine::EngineConfig;
    use std::net::TcpListener;
    use std::time::Duration;

    let workers = 2usize;
    let sessions = 64usize;
    let spec = SketchSpec::f0("knw-f0", 0.05, 1 << 20, 42);

    // Every client gets its own slice of a skewed insert-only stream.
    let streams: Vec<Vec<u64>> = (0..sessions as u64)
        .map(|s| {
            (0..8_192u64)
                .map(|i| {
                    let x = (s * 8_192 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    if x.is_multiple_of(4) {
                        x % 512
                    } else {
                        x % (1 << 20)
                    }
                })
                .collect()
        })
        .collect();

    println!("== estimation-as-a-service: {sessions} concurrent sessions ==");
    println!(
        "{} clients x {} items, multiplexed over {} worker hosts\n",
        sessions,
        streams[0].len(),
        workers
    );

    // Tier three: the worker fleet — one listening host per worker, each
    // running the exact serve loop inside `knw-worker --listen`.  The
    // aggregator opens one session per host, so one session each suffices.
    let mut addrs = Vec::with_capacity(workers);
    let mut hosts = Vec::with_capacity(workers);
    for index in 0..workers {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker host");
        let addr = listener.local_addr().expect("bound address").to_string();
        println!("worker host {index}: listening on {addr}");
        addrs.push(addr);
        hosts.push(std::thread::spawn(move || {
            serve(&listener, &ServeOptions::default().with_max_sessions(1)).expect("worker serve");
        }));
    }

    // Tier one: the session front end.  One thread, one epoll loop, a
    // per-session state machine for every connected client; stops after
    // `sessions` completed sessions (the `--sessions N` semantics).
    let front = TcpListener::bind("127.0.0.1:0").expect("bind serve front");
    let front_addr = front.local_addr().expect("bound address").to_string();
    println!("serve front   : serving on {front_addr}\n");
    let config = TcpClusterConfig::new(addrs).with_engine(EngineConfig::new(workers));
    let serve_spec = spec.clone();
    let server = std::thread::spawn(move || {
        let mut aggregator =
            F0ClusterAggregator::connect(&config, &serve_spec).expect("connect worker fleet");
        let options = SessionServeOptions::default().with_max_sessions(sessions);
        let stats = serve_sessions(&front, &mut aggregator, &options).expect("serve loop");
        let merged = aggregator.finish().expect("merge the fleet");
        (stats, merged.estimate())
    });

    // Tier zero: the clients — also one thread, one event loop, driving
    // all 64 sessions concurrently with a midstream `Snapshot` every other
    // batch to exercise point-in-time merges under interleaving.
    let drive = drive_sessions(
        &front_addr,
        &spec,
        &streams,
        1_024,
        Some(2),
        Duration::from_secs(120),
    )
    .expect("drive sessions");
    let (stats, served_estimate) = server.join().expect("server thread");
    for host in hosts {
        host.join().expect("worker host thread");
    }

    println!(
        "sessions served : {} ({} errored; peak {} concurrent, peak write queue {} bytes)",
        stats.sessions_served,
        stats.sessions_errored,
        stats.peak_concurrent,
        stats.peak_write_queue_bytes,
    );
    println!(
        "ingested        : {} updates in {} batches; {} snapshots served, {} shard replies",
        stats.updates_ingested, stats.batches_ingested, stats.snapshots_served, drive.shard_replies,
    );

    // The ground truth: one sketch over the union of every client's
    // stream answers the same, bit for bit — session interleaving is
    // invisible to an exactly mergeable estimator.
    let mut single = build_f0(&spec).expect("zoo name");
    for stream in &streams {
        single.insert_batch(stream);
    }
    println!("\nserved estimate         : {served_estimate}");
    println!("single-process estimate : {}", single.estimate());
    assert_eq!(
        served_estimate.to_bits(),
        single.estimate().to_bits(),
        "64 interleaved sessions must merge bit-identically"
    );
    println!(
        "bit-identical           : true ({} concurrent sessions)",
        sessions
    );
}

#[cfg(not(target_os = "linux"))]
fn main() {
    println!(
        "the session serve loop is built on a raw epoll readiness loop and \
         is Linux-only; nothing to demo on this platform"
    );
}
