//! Distributed aggregation over the serde wire format: shard workers that
//! share **no memory** with the aggregator — only length-prefixed frames on
//! a byte stream — reproduce the single-stream estimate bit for bit.
//!
//! This example runs the full `knw-cluster` frame protocol
//! (`Hello → Batch… → Snapshot/Finish → Shard{bytes}`) over Unix socket
//! pairs, with the worker loop (`knw_cluster::run_worker`, the exact code
//! inside the `knw-worker` binary) on its own threads, so it is
//! self-contained under `cargo run --example`.  For the real multi-process
//! topology — spawned child processes on stdin/stdout pipes — run the
//! `knw-aggregate` binary:
//!
//! ```text
//! cargo run --release --bin knw-aggregate -- --workers 4 --estimator knw-f0
//! ```
//!
//! For the multi-host topology — listening workers reached over TCP
//! sockets with `ClusterAggregator::connect_workers` — see the
//! `cluster_tcp` example and `knw-aggregate --transport tcp`.
//!
//! Run this example with:
//! ```text
//! cargo run --release --example cluster_aggregation
//! ```

use knw::cluster::{
    build_l0, l0_shard_from_bytes, read_frame, run_worker, write_frame, BatchPayload, Frame,
    HelloConfig, SketchSpec,
};
use knw::stream::partition_updates_by_item;
use std::os::unix::net::UnixStream;

fn main() {
    let workers = 4usize;
    let spec = SketchSpec::l0("knw-l0", 0.05, 1 << 20, 42);

    // A churn-heavy signed stream: inserts, corrections, deletions.
    let mut state = 0x00C0_FFEE_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let updates: Vec<(u64, i64)> = (0..400_000)
        .map(|_| (next() % 50_000, (next() % 9) as i64 - 4))
        .collect();

    println!("== multi-worker aggregation over the wire format ==");
    println!(
        "stream: {} signed updates over a 50k-item universe, {} workers\n",
        updates.len(),
        workers
    );

    // Start one protocol-speaking worker per shard, each on its own thread
    // behind a Unix socket — no shared memory, bytes only.
    let mut channels = Vec::with_capacity(workers);
    let mut handles = Vec::with_capacity(workers);
    for index in 0..workers {
        let (ours, theirs) = UnixStream::pair().expect("socketpair");
        handles.push(std::thread::spawn(move || {
            let mut reader = theirs.try_clone().expect("clone socket");
            let mut writer = theirs;
            run_worker(&mut reader, &mut writer).expect("worker loop");
        }));
        let mut hello_sink = ours.try_clone().expect("clone socket");
        write_frame(
            &mut hello_sink,
            &Frame::Hello(HelloConfig {
                worker_index: index as u64,
                spec: spec.clone(),
            }),
        )
        .expect("send Hello");
        channels.push(ours);
    }

    // Route by item (the HashAffine discipline, seed 0) and stream batches.
    let parts = partition_updates_by_item(&updates, workers);
    for (channel, part) in channels.iter_mut().zip(&parts) {
        for chunk in part.chunks(4_096) {
            write_frame(
                channel,
                &Frame::Batch(BatchPayload::Updates(chunk.to_vec())),
            )
            .expect("send Batch");
        }
    }

    // Finish: every worker serializes its shard and ships the bytes back.
    let mut merged = build_l0(&spec).expect("zoo name");
    for (index, mut channel) in channels.into_iter().enumerate() {
        write_frame(&mut channel, &Frame::Finish).expect("send Finish");
        let frame = read_frame(&mut channel)
            .expect("read reply")
            .expect("reply");
        let Frame::Shard(bytes) = frame else {
            panic!("worker {index} answered {} instead of Shard", frame.kind());
        };
        println!(
            "worker {index}: shard arrived as {:>6} serialized bytes ({:>6} updates routed)",
            bytes.len(),
            parts[index].len()
        );
        let shard = l0_shard_from_bytes(&spec, &bytes).expect("decode shard");
        <(u64, i64) as knw::cluster::ClusterUpdate>::merge(merged.as_mut(), shard.as_ref())
            .expect("compatible shards");
    }
    for handle in handles {
        handle.join().expect("worker thread");
    }

    // The ground truth of exact mergeability: a single sketch over the whole
    // stream answers the same, bit for bit.
    let mut single = build_l0(&spec).expect("zoo name");
    single.update_batch(&updates);
    println!("\nmerged-from-wire estimate : {}", merged.estimate());
    println!("single-stream estimate    : {}", single.estimate());
    assert_eq!(
        merged.estimate().to_bits(),
        single.estimate().to_bits(),
        "wire merge must be bit-identical"
    );
    println!("bit-identical             : true");
}
