//! Multi-host distributed aggregation over TCP sockets: N workers, each a
//! "host" with its own listening socket (here: localhost threads running
//! the exact serve loop inside `knw-worker --listen`), an aggregator that
//! `connect_workers`-fans out to them, and a merged estimate that is
//! **bit-identical** to a single-process run — sketches shipped only as
//! serialized bytes over real sockets, never as shared memory.
//!
//! On actual separate machines the topology is the same, minus the
//! threads:
//!
//! ```text
//! hostA$ knw-worker --listen 0.0.0.0:7001     # prints `listening on …`
//! hostB$ knw-worker --listen 0.0.0.0:7001
//! hostC$ knw-aggregate --transport tcp --connect hostA:7001 \
//!                      --connect hostB:7001 --estimator knw-f0 --recover
//! ```
//!
//! The run also demonstrates reconnect-and-replay recovery: one host's
//! link is severed at the stream's midpoint, and the aggregator rebuilds
//! the lost shard on a fresh session from its replay journal — the final
//! estimate is still bit-identical.
//!
//! Run this example with:
//! ```text
//! cargo run --release --example cluster_tcp
//! ```

use knw::cluster::{
    build_f0, serve, F0ClusterAggregator, RecoveryPolicy, ServeOptions, SketchSpec,
    TcpClusterConfig,
};
use knw::engine::{EngineConfig, RoutingPolicy};
use std::net::TcpListener;

fn main() {
    let workers = 4usize;
    let spec = SketchSpec::f0("knw-f0", 0.05, 1 << 20, 42);
    // The host that will "fail": its first session is severed mid-stream,
    // and reconnect-and-replay recovery rebuilds the shard in its second.
    let failing_host = 1usize;

    // A skewed insert-only stream: a small hot set over a large tail.
    let items: Vec<u64> = (0..400_000u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            if x.is_multiple_of(4) {
                x % 512
            } else {
                x % (1 << 20)
            }
        })
        .collect();

    println!("== multi-host aggregation over TCP sockets ==");
    println!(
        "stream: {} items over a 1Mi universe, {} worker hosts\n",
        items.len(),
        workers
    );

    // Bring up one "host" per worker: a listening socket served by the
    // same loop `knw-worker --listen` runs.  Bounded session counts
    // (`--sessions` semantics) make each host wind down after its work,
    // so the example exits cleanly: the failing host serves two sessions
    // (the severed one plus the recovery reconnect), the rest serve one.
    let mut addrs = Vec::with_capacity(workers);
    let mut hosts = Vec::with_capacity(workers);
    for index in 0..workers {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker host");
        let addr = listener.local_addr().expect("bound address").to_string();
        println!("worker host {index}: listening on {addr}");
        addrs.push(addr);
        let sessions = if index == failing_host { 2 } else { 1 };
        hosts.push(std::thread::spawn(move || {
            serve(
                &listener,
                &ServeOptions::default().with_max_sessions(sessions),
            )
            .expect("serve loop");
        }));
    }

    // The aggregator fans out over TCP: hash-affine routing, one shard per
    // connected host, every frame on a real socket — and a recovery
    // policy, so losing a worker mid-stream reconnects and replays the
    // shard's journal instead of failing the run.
    let config = TcpClusterConfig::new(addrs)
        .with_engine(EngineConfig::new(workers).with_routing(RoutingPolicy::HashAffine { seed: 0 }))
        .with_recovery(RecoveryPolicy::default());
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect worker hosts");
    let (first, rest) = items.split_at(items.len() / 2);
    for chunk in first.chunks(8_192) {
        cluster.ingest_batch(chunk);
    }
    // Disaster strikes host 1 at the midpoint: its link is severed (the
    // session dies exactly as if the host had crashed).  The next batch
    // routed to it triggers reconnect-and-replay — the host's fresh
    // session receives the full journal and catches up exactly.
    println!("\nsevering worker host {failing_host} mid-stream … recovery will replay its journal");
    cluster
        .kill_worker(failing_host)
        .expect("sever worker link");
    for chunk in rest.chunks(8_192) {
        cluster.ingest_batch(chunk);
    }
    let merged = cluster.finish().expect("recovered multi-host run");
    for host in hosts {
        host.join().expect("worker host thread");
    }

    // The ground truth of exact mergeability: a single sketch over the
    // whole stream answers the same, bit for bit — even though one shard
    // was rebuilt from scratch by journal replay mid-run.
    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&items);
    println!("\nmerged-over-tcp estimate : {}", merged.estimate());
    println!("single-process estimate  : {}", single.estimate());
    assert_eq!(
        merged.estimate().to_bits(),
        single.estimate().to_bits(),
        "socket merge (with one recovered worker) must be bit-identical"
    );
    println!("bit-identical            : true (one worker lost and replayed)");
}
