//! Multi-host distributed aggregation over TCP sockets: N workers, each a
//! "host" with its own listening socket (here: localhost threads running
//! the exact serve loop inside `knw-worker --listen`), an aggregator that
//! `connect_workers`-fans out to them, and a merged estimate that is
//! **bit-identical** to a single-process run — sketches shipped only as
//! serialized bytes over real sockets, never as shared memory.
//!
//! On actual separate machines the topology is the same, minus the
//! threads:
//!
//! ```text
//! hostA$ knw-worker --listen 0.0.0.0:7001     # prints `listening on …`
//! hostB$ knw-worker --listen 0.0.0.0:7001
//! hostC$ knw-aggregate --transport tcp --connect hostA:7001 \
//!                      --connect hostB:7001 --estimator knw-f0
//! ```
//!
//! Run this example with:
//! ```text
//! cargo run --release --example cluster_tcp
//! ```

use knw::cluster::{
    build_f0, serve, F0ClusterAggregator, ServeOptions, SketchSpec, TcpClusterConfig,
};
use knw::engine::{EngineConfig, RoutingPolicy};
use std::net::TcpListener;

fn main() {
    let workers = 4usize;
    let spec = SketchSpec::f0("knw-f0", 0.05, 1 << 20, 42);

    // A skewed insert-only stream: a small hot set over a large tail.
    let items: Vec<u64> = (0..400_000u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            if x.is_multiple_of(4) {
                x % 512
            } else {
                x % (1 << 20)
            }
        })
        .collect();

    println!("== multi-host aggregation over TCP sockets ==");
    println!(
        "stream: {} items over a 1Mi universe, {} worker hosts\n",
        items.len(),
        workers
    );

    // Bring up one "host" per worker: a listening socket served by the
    // same loop `knw-worker --listen` runs.  `--once` semantics
    // (max_sessions = 1) make each host wind down after its session, so
    // the example exits cleanly.
    let mut addrs = Vec::with_capacity(workers);
    let mut hosts = Vec::with_capacity(workers);
    for index in 0..workers {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker host");
        let addr = listener.local_addr().expect("bound address").to_string();
        println!("worker host {index}: listening on {addr}");
        addrs.push(addr);
        hosts.push(std::thread::spawn(move || {
            serve(&listener, &ServeOptions::default().with_max_sessions(1)).expect("serve loop");
        }));
    }

    // The aggregator fans out over TCP: hash-affine routing, one shard per
    // connected host, every frame on a real socket.
    let config = TcpClusterConfig::new(addrs).with_engine(
        EngineConfig::new(workers).with_routing(RoutingPolicy::HashAffine { seed: 0 }),
    );
    let mut cluster = F0ClusterAggregator::connect(&config, &spec).expect("connect worker hosts");
    for chunk in items.chunks(8_192) {
        cluster.ingest_batch(chunk);
    }
    let merged = cluster.finish().expect("clean multi-host run");
    for host in hosts {
        host.join().expect("worker host thread");
    }

    // The ground truth of exact mergeability: a single sketch over the
    // whole stream answers the same, bit for bit.
    let mut single = build_f0(&spec).expect("zoo name");
    single.insert_batch(&items);
    println!("\nmerged-over-tcp estimate : {}", merged.estimate());
    println!("single-process estimate  : {}", single.estimate());
    assert_eq!(
        merged.estimate().to_bits(),
        single.estimate().to_bits(),
        "socket merge must be bit-identical"
    );
    println!("bit-identical            : true");
}
