//! Quickstart: estimate the number of distinct elements in a stream with the
//! KNW sketch, compare against ground truth, and inspect the space used.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use knw::core::{CardinalityEstimator, F0Config, KnwF0Sketch, SpaceUsage};
use knw::stream::{StreamGenerator, UniformGenerator};

fn main() {
    // A stream of 2 million tokens drawn from ~600k distinct values.
    let universe = 1u64 << 24;
    let mut generator = UniformGenerator::new(universe, 42);
    let stream = generator.take_vec(2_000_000);
    let truth = generator.distinct_so_far();

    // ε = 0.05 → K = 1/ε² = 512 counters (rounded to a power of two).
    let config = F0Config::new(0.05, universe).with_seed(7);
    let mut sketch = KnwF0Sketch::new(config);

    for &item in &stream {
        sketch.insert(item);
    }

    let estimate = sketch.estimate();
    let relative_error = (estimate - truth as f64).abs() / truth as f64;

    println!("stream length        : {}", stream.len());
    println!("true distinct count  : {truth}");
    println!("KNW estimate         : {estimate:.0}");
    println!("relative error       : {:.2}%", 100.0 * relative_error);
    println!(
        "sketch space         : {} bits ({:.1} KiB)",
        sketch.space_bits(),
        sketch.space_bits() as f64 / 8192.0
    );
    println!(
        "exact set would need : {} bits ({:.1} KiB)",
        truth * 64,
        (truth * 64) as f64 / 8192.0
    );
    println!(
        "counter bit budget A : {} (FAIL threshold 3K = {})",
        sketch.counter_bits(),
        3 * sketch.num_counters()
    );

    // Midstream reporting is O(1): ask for an estimate at any time.
    let mut midstream = KnwF0Sketch::new(F0Config::new(0.05, universe).with_seed(9));
    for (t, &item) in stream.iter().enumerate() {
        midstream.insert(item);
        if (t + 1) % 500_000 == 0 {
            println!(
                "after {:>9} updates the estimate is {:.0}",
                t + 1,
                midstream.estimate()
            );
        }
    }
}
